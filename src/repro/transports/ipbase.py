"""Shared machinery for IP-family transports (TCP, UDP, AAL-5).

These transports differ from the fast family in three ways that matter to
the paper's experiments:

* **Kernel-buffer delivery** — an arriving message lands in the
  destination's kernel buffer (the transport inbox) at wire-arrival time
  regardless of what the application is doing; it is *detected* only when
  the application next polls this method.  The gap between arrival and
  detection is exactly the latency that `skip_poll` trades against poll
  cost (Figures 6, Table 1).
* **Expensive polls** — ``select``-class polls cost ~100 µs and steal
  device time from fast transports (``steals_device_time``).
* **Connections** — TCP-style methods pay a one-time connection cost per
  communication object; per-connection channels serialise outgoing data.

Routing honours a ``"via"`` descriptor parameter: when the forwarding
service (Section 3.3) is installed, a partition member's TCP descriptor
is rewritten to route through the forwarder context, which re-sends over
MPL.
"""

from __future__ import annotations

import typing as _t

from ..simnet.link import LinkProfile
from ..simnet.resources import Resource
from .base import ContextLike, Descriptor, Transport, WireMessage
from .errors import DeliveryError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..simnet.node import Host


class IpTransport(Transport):
    """Base class for routed, poll-expensive, kernel-buffered transports."""

    def export_descriptor(self, context: ContextLike) -> Descriptor | None:
        return Descriptor(
            method=self.name,
            context_id=context.id,
            params=(("host", context.host.id),),
        )

    def applicable(self, local: ContextLike, descriptor: Descriptor,
                   remote_host: "Host") -> bool:
        return self.network.ip_connected(local.host, remote_host,
                                         self.wire_method)

    # -- profiles ------------------------------------------------------------

    def profile_between(self, src: "Host", dst: "Host") -> LinkProfile:
        """Effective wire profile between two hosts for this method.

        Same machine → the machine's switch profile for this method if one
        is configured, else this module's default costs; different
        machines → the collapsed WAN path profile.

        Raises :class:`DeliveryError` while a hard fault severs the pair
        (the cached profile is epoch-keyed, so installed/lifted faults
        re-resolve on the next send).
        """
        if self.network._fault_rules and self.network.is_faulted(
                src, dst, self.wire_method):
            raise DeliveryError(
                f"{self.wire_method} between {src.name!r} and "
                f"{dst.name!r} is down (hard fault)"
            )
        if src.machine is dst.machine:
            profile = None
            if src.machine is not None:
                profile = src.machine.switch_profile(self.wire_method)
            if profile is not None:
                return profile
            return LinkProfile(
                name=f"{self.name}-default",
                latency=self.costs.latency,
                bandwidth=self.costs.bandwidth,
            )
        profile = self.network.effective_profile(self.wire_method, src, dst)
        if profile is None:
            raise DeliveryError(
                f"no {self.wire_method} route between {src.name!r} and "
                f"{dst.name!r}"
            )
        return profile

    # -- comm objects ------------------------------------------------------

    def open(self, local: ContextLike, descriptor: Descriptor) -> dict:
        state = super().open(local, descriptor)
        state["channel"] = Resource(
            self.sim, capacity=1,
            name=f"{self.name}:{local.id}->{descriptor.context_id}",
        )
        state["profile"] = None  # resolved lazily on first send
        return state

    # -- send ------------------------------------------------------------------

    def send(self, local: ContextLike, state: dict, descriptor: Descriptor,
             message: WireMessage):
        costs = self.costs
        yield from self._charge(costs.send_overhead
                                + costs.per_byte_send * message.nbytes)
        if not state.get("connected", False):
            yield from self._charge(state.get("connect_cost", 0.0))
            state["connected"] = True
            self.services.tracer.incr(f"{self.name}.connections")

        via = descriptor.param("via")
        hop_context = self._destination(
            descriptor if via is None
            else Descriptor(self.name, _t.cast(int, via))
        )
        profile = state.get("profile")
        if (profile is None
                or state.get("profile_host") is not hop_context.host
                or state.get("profile_epoch") != self.network.epoch):
            profile = self.profile_between(local.host, hop_context.host)
            reserved = descriptor.param("reserved_bandwidth")
            if reserved is not None:
                # A QoS-reserved channel runs at its guaranteed rate.
                profile = LinkProfile(
                    name=f"{profile.name}+rsv",
                    latency=profile.latency,
                    bandwidth=float(_t.cast(float, reserved)),
                    send_overhead=profile.send_overhead,
                    recv_overhead=profile.recv_overhead,
                )
            state["profile"] = profile
            state["profile_host"] = hop_context.host
            state["profile_epoch"] = self.network.epoch

        channel = _t.cast(Resource, state["channel"])
        request = channel.request()
        try:
            yield request
            message.method = self.name
            message.sent_at = self.sim.now
            yield self.sim.timeout(profile.serialization_time(message.nbytes))
        finally:
            # Granted (even if we were interrupted mid-serialisation) →
            # give the capacity back; still pending → withdraw the
            # request so the channel never leaks a unit.
            if request.triggered:
                channel.release()
            else:
                channel.cancel(request)
        self.record_send(message)
        if message.trace is not None:
            message.trace.transition("wire", ctx=local.id, lane=self.name,
                                     nbytes=message.nbytes)

        if self.network._flaky_rules and self.network.fault_drop(
                local.host, hop_context.host, self.wire_method):
            if self.costs.reliable:
                # A reliable transport notices the loss (connection
                # reset) and reports it synchronously so the core layer
                # can retry or fail over.
                raise DeliveryError(
                    f"{self.name} connection {local.host.name!r}->"
                    f"{hop_context.host.name!r} reset by flaky link"
                )
            self.record_drop(message)
            return
        if not self.costs.reliable and self._drop():
            self.record_drop(message)
            return

        self.sim.process(
            self._arrive_later(hop_context, message, profile.latency),
            name=f"{self.name}:arrive:{message.handler}",
        )

    def _drop(self) -> bool:
        p = self.costs.drop_probability
        return p > 0.0 and bool(self.services.rng.random() < p)

    def _arrive_later(self, destination: ContextLike, message: WireMessage,
                      latency: float):
        yield self.sim.timeout(latency)
        message.arrived_at = self.sim.now
        if message.trace is not None:
            # Kernel-buffer arrival; detection waits for the next poll.
            message.trace.transition("poll_detect", ctx=destination.id,
                                     lane=self.name)
        destination.inbox(self.name).put(message)
        notify = getattr(destination, "note_arrival", None)
        if notify is not None:
            notify()

    # -- poll --------------------------------------------------------------------

    def poll(self, context: ContextLike):
        yield from self._charge(self.costs.poll_cost)
        return self.collect(context)

    def collect(self, context: ContextLike) -> list[WireMessage]:
        """Drain every message already in the kernel buffer (no cost)."""
        inbox = context.inbox(self.name)
        ready: list[WireMessage] = []
        while True:
            item = inbox.try_get()
            if item is None:
                break
            ready.append(_t.cast(WireMessage, item))
        return ready
