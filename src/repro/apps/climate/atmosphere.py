"""The atmosphere component (PCCM stand-in).

A real (numerically executing) shallow-water-style model on a lat-lon
grid: height ``h`` and velocity ``u, v`` advanced with a conservative
finite-difference step (advection of h by the wind plus diffusion),
decomposed by latitude across the atmosphere ranks.  Every step performs
a genuine halo exchange through mini-MPI; the physics itself is simple
but conserves mass to machine precision on a periodic/reflecting domain,
which the test suite verifies.

The paper's PCCM is orders of magnitude more expensive per cell; the
virtual-time cost of a step is therefore charged from the calibrated
``atmo_compute_s`` constant (via the poll manager's ``busy_work``) while
the numpy arithmetic provides real, checkable model state.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .grid import Slab

#: Nondimensional step parameters (stability: nu + |c| < 0.25).
DIFFUSION = 0.12
ADVECTION = 0.08
GRAVITY_FEEDBACK = 0.02


class Atmosphere:
    """One rank's share of the atmosphere state."""

    def __init__(self, rank: int, nranks: int, nx: int, ny: int,
                 seed: int = 0):
        self.rank = rank
        self.nranks = nranks
        rng = np.random.default_rng(seed)  # same global field on all ranks
        base = 100.0 + rng.standard_normal((ny, nx)).cumsum(axis=1)
        base -= base.mean()
        base += 100.0
        self.h = Slab.from_global(base, rank, nranks)
        self.u = Slab.from_global(0.5 * np.cos(
            np.linspace(0, np.pi, ny))[:, None] * np.ones((ny, nx)),
            rank, nranks)
        self.v = Slab.zeros(rank, nranks, nx, ny)
        self.steps_taken = 0

    @property
    def slabs(self) -> tuple[Slab, Slab, Slab]:
        return (self.h, self.u, self.v)

    def step_interior(self) -> None:
        """One physics step; assumes ghost rows are current."""
        h = self.h.data
        u = self.u.data
        v = self.v.data

        # Periodic in x (longitude), ghosts in y (latitude).
        def lap(f: np.ndarray) -> np.ndarray:
            return (np.roll(f, 1, axis=1)[1:-1] + np.roll(f, -1, axis=1)[1:-1]
                    + f[2:] + f[:-2] - 4.0 * f[1:-1])

        def ddx(f: np.ndarray) -> np.ndarray:
            return 0.5 * (np.roll(f, -1, axis=1)[1:-1]
                          - np.roll(f, 1, axis=1)[1:-1])

        def ddy(f: np.ndarray) -> np.ndarray:
            return 0.5 * (f[2:] - f[:-2])

        dh = (DIFFUSION * lap(h)
              - ADVECTION * (u[1:-1] * ddx(h) + v[1:-1] * ddy(h)))
        du = DIFFUSION * lap(u) - GRAVITY_FEEDBACK * ddx(h)
        dv = DIFFUSION * lap(v) - GRAVITY_FEEDBACK * ddy(h)

        self.h.interior[:] = h[1:-1] + dh
        self.u.interior[:] = u[1:-1] + du
        self.v.interior[:] = v[1:-1] + dv
        self.steps_taken += 1

    # -- coupler interface ------------------------------------------------

    def surface_fluxes(self) -> np.ndarray:
        """The flux field handed to the ocean: a smoothed function of the
        local height and wind (one value per owned cell)."""
        return (0.01 * (self.h.interior - 100.0)
                + 0.05 * np.abs(self.u.interior))

    def apply_sst(self, sst: np.ndarray) -> None:
        """Fold received sea-surface temperature back into the height
        field (bounded feedback, preserving the mean)."""
        forcing = 0.01 * (sst - sst.mean())
        self.h.interior[:] = self.h.interior + forcing

    def checksum(self) -> float:
        """Deterministic state digest used by the regression tests."""
        return float(self.h.interior.sum()
                     + 2.0 * self.u.interior.sum()
                     + 3.0 * self.v.interior.sum())
