"""Tests for the sim-time profiler and its collapsed-stack export."""

import re

import pytest

from repro.obs import PHASES
from repro.obs.perf import PerfProfile, _union_length
from repro.util.report import hot_path_report

from .test_spans import run_pingpong

STACK_LINE = re.compile(r"^[^ ]+ \d+$")


@pytest.fixture(scope="module")
def profile():
    bed = run_pingpong()
    return PerfProfile.from_observability(bed.nexus.obs)


class TestUnionLength:
    def test_empty(self):
        assert _union_length([]) == 0.0

    def test_disjoint_and_overlapping(self):
        assert _union_length([(0.0, 1.0), (2.0, 3.0)]) == 2.0
        assert _union_length([(0.0, 2.0), (1.0, 3.0)]) == 3.0

    def test_nested_and_degenerate(self):
        assert _union_length([(0.0, 4.0), (1.0, 2.0)]) == 4.0
        assert _union_length([(1.0, 1.0), (2.0, 1.0)]) == 0.0


class TestAttribution:
    def test_keys_are_known_phases_and_handlers(self, profile):
        paths = profile.hot_paths()
        assert paths
        assert {p.phase for p in paths} <= set(PHASES)
        assert {p.handler for p in paths} == {"h"}
        assert {p.lane for p in paths} >= {"mpl", "tcp", "nexus"}

    def test_self_never_exceeds_cumulative(self, profile):
        for path in profile.hot_paths():
            assert 0.0 <= path.self_s <= path.cum_s + 1e-15

    def test_hottest_first(self, profile):
        selfs = [p.self_s for p in profile.hot_paths()]
        assert selfs == sorted(selfs, reverse=True)

    def test_total_self_does_not_double_count_nesting(self, profile):
        # Self time is duration minus child overlap, so the profile's
        # total self time can never exceed the sum of root durations.
        total_cum = sum(p.cum_s for p in profile.hot_paths())
        assert 0.0 < profile.total_self_s <= total_cum

    def test_counts_spans(self, profile):
        assert profile.spans_profiled > 0
        assert sum(p.count for p in profile.hot_paths()) == (
            profile.spans_profiled)


class TestCollapsedStacks:
    def test_line_format(self, profile):
        lines = profile.collapsed_stacks()
        assert lines
        for line in lines:
            assert STACK_LINE.match(line), line
            stack, _value = line.rsplit(" ", 1)
            assert stack.startswith("rsr:h;")

    def test_deterministic_across_identical_runs(self):
        first = PerfProfile.from_observability(run_pingpong().nexus.obs)
        second = PerfProfile.from_observability(run_pingpong().nexus.obs)
        assert first.collapsed_stacks() == second.collapsed_stacks()

    def test_write_collapsed(self, profile, tmp_path):
        path = tmp_path / "profile.folded"
        profile.write_collapsed(str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert text.splitlines() == profile.collapsed_stacks()


class TestHotPathReport:
    def test_renders_paths_and_handler(self, profile):
        report = hot_path_report(profile, top_n=5)
        assert "hot paths" in report
        assert "[h]" in report
        assert "self ms" in report

    def test_empty_profile(self):
        assert hot_path_report(PerfProfile()) == (
            "(no traced spans to profile)")

    def test_top_n_limits_rows(self, profile):
        full = hot_path_report(profile, top_n=100)
        short = hot_path_report(profile, top_n=1)
        assert len(short.splitlines()) < len(full.splitlines())


class TestFromRuns:
    def test_merges_runs(self):
        obs_a = run_pingpong().nexus.obs
        obs_b = run_pingpong().nexus.obs
        merged = PerfProfile.from_runs([(obs_a, None), (obs_b, None)])
        single = PerfProfile.from_observability(obs_a)
        assert merged.spans_profiled == 2 * single.spans_profiled
        assert merged.total_self_s == pytest.approx(
            2 * single.total_self_s)

    def test_disabled_runtime_profiles_nothing(self):
        obs = run_pingpong(observe=False).nexus.obs
        profile = PerfProfile.from_observability(obs)
        assert profile.hot_paths() == []
        assert profile.collapsed_stacks() == []
