"""Exception hierarchy for the :mod:`repro.simnet` discrete-event engine."""

from __future__ import annotations


class SimnetError(Exception):
    """Base class for all simulation-engine errors."""


class ClockError(SimnetError):
    """The virtual clock was asked to move backwards or to an invalid time."""


class ScheduleError(SimnetError):
    """An event could not be scheduled (negative delay, re-schedule, ...)."""


class EventError(SimnetError):
    """Illegal operation on an :class:`~repro.simnet.events.Event`."""


class ProcessError(SimnetError):
    """Illegal operation on a simulated process."""


class Interrupt(Exception):
    """Raised *inside* a simulated process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` describing why the
    interrupt happened (for example a failure-injection record).  This is an
    ordinary exception: the interrupted process may catch it and continue,
    which is how transport-failover logic is written in
    :mod:`repro.apps.stream`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


class SimulationFinished(SimnetError):
    """Internal signal used by :meth:`Simulator.run` to stop the event loop."""

    def __init__(self, value: object = None):
        super().__init__(value)
        self.value = value
