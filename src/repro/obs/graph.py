"""Weighted communication-graph extraction from span traces.

ROADMAP item 2 needs the application's communication structure as data:
which (rank, component) pairs talk, how much, over which method.  This
module recovers exactly that from the span substrate — every delivered
message leaves a ``wire`` span whose parent sits at the sending context
and whose first non-wire child (``poll_detect``/``dispatch``) sits at
the receiving context, so the edge list falls out of the parent links:

* **nodes** are contexts, densely renumbered to ranks by first
  appearance in the span log (raw context ids are process-global and
  would break byte-determinism), labelled with component and host names
  when a runtime is supplied;
* **edges** are (src rank, dst rank, method) with message count, bytes
  (the wire span's ``nbytes`` attribute), total wire transit sim-time,
  and total detection sim-time.

Multicast group sends appear as one edge per member (the fork children
carry the per-member wire spans; the group's serialisation span, whose
children are all wire spans, contributes no edge itself).  Forwarding
appears as per-hop edges through the forwarder.  Wire spans with no
delivery child — dropped or still in flight at snapshot time — are
counted per source node as ``undelivered``, never silently discarded.

Exports follow the house rules: sorted-key JSON documents and a
Graphviz DOT rendering, both byte-identical across identical runs.
:func:`evaluate_partition` is the seed of the placement planner: given
an assignment of ranks to partitions it splits the traffic into
intra/cross-partition shares and reports the cut cost.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from .spans import (
    PHASE_POLL_DETECT,
    PHASE_WIRE,
    Observability,
    Span,
    TraceIncompleteError,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.runtime import Nexus

GRAPH_SCHEMA = "repro.obs.graph"
GRAPH_SCHEMA_VERSION = 1

_JSON_KW: dict[str, object] = {"sort_keys": True,
                               "separators": (",", ":")}


@dataclasses.dataclass
class GraphNode:
    """One communicating context, identified by its dense rank."""

    rank: int
    component: str
    host: str
    messages_in: int = 0
    messages_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Wire spans leaving this node that never reached a delivery phase
    #: (dropped by a fault, or still in flight when the log was cut).
    undelivered: int = 0


@dataclasses.dataclass
class GraphEdge:
    """Directed traffic between two ranks over one transport method."""

    src: int
    dst: int
    method: str
    messages: int = 0
    bytes: int = 0
    #: Total sim-time spent in physical transit on this edge.
    wire_s: float = 0.0
    #: Total sim-time from arrival to poll pickup on this edge.
    detect_s: float = 0.0


class CommGraph:
    """The extracted weighted communication graph.

    ``nodes`` is keyed by rank; ``edges`` by ``(src, dst, method)``.
    """

    def __init__(self) -> None:
        self.nodes: dict[int, GraphNode] = {}
        self.edges: dict[tuple[int, int, str], GraphEdge] = {}
        #: Spans the source log discarded at capacity; nonzero means the
        #: graph was extracted with ``allow_partial=True`` and may be
        #: missing edges (surfaced in the exported document).
        self.dropped_spans = 0

    def edge_list(self) -> list[GraphEdge]:
        """Edges in deterministic (src, dst, method) order."""
        return [self.edges[key] for key in sorted(self.edges)]

    def node_list(self) -> list[GraphNode]:
        return [self.nodes[rank] for rank in sorted(self.nodes)]

    @property
    def total_messages(self) -> int:
        return sum(edge.messages for edge in self.edges.values())

    @property
    def total_bytes(self) -> int:
        return sum(edge.bytes for edge in self.edges.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CommGraph nodes={len(self.nodes)} "
                f"edges={len(self.edges)} msgs={self.total_messages}>")


def _delivery_edges(spans: _t.Sequence[Span]
                    ) -> _t.Iterator[tuple[int, int, int, str, int, float,
                                           float, bool]]:
    """Yield (wire_span_id, src_ctx, dst_ctx, method, nbytes, wire_s,
    detect_s, delivered) per wire span representing a point-to-point
    transit."""
    by_id: dict[int, Span] = {}
    children: dict[int, list[Span]] = {}
    for span in spans:
        by_id[span.id] = span
        if span.parent is not None:
            children.setdefault(span.parent, []).append(span)
    for span in spans:
        if span.phase != PHASE_WIRE:
            continue
        kids = children.get(span.id, ())
        delivery = [k for k in kids if k.phase != PHASE_WIRE]
        if not delivery and any(k.phase == PHASE_WIRE for k in kids):
            # Group-send serialisation span: the fork children carry the
            # per-member transits, so this span itself is not an edge.
            continue
        parent = by_id.get(span.parent) if span.parent is not None else None
        src_ctx = parent.ctx if parent is not None else span.ctx
        nbytes = 0
        if span.attrs is not None:
            nbytes = int(_t.cast(int, span.attrs.get("nbytes", 0)))
        if not delivery:
            yield span.id, src_ctx, -1, span.lane, nbytes, 0.0, 0.0, False
            continue
        first = delivery[0]
        detect_s = 0.0
        if first.phase == PHASE_POLL_DETECT and first.duration is not None:
            detect_s = first.duration
        yield (span.id, src_ctx, first.ctx, span.lane, nbytes,
               span.duration or 0.0, detect_s, True)


class GraphBuilder:
    """Incremental comm-graph fold, one bounded RSR span group at a time.

    Feeding the whole span log through one :meth:`add_rsr` call is
    exactly :func:`extract_graph`; feeding per-RSR groups in any order
    produces the identical graph, because every accumulator is
    order-free: edge sums are integers (wire/detect times accumulate in
    integer nanoseconds, converted once at :meth:`finish`) and ranks
    come from a canonical per-context key — the minimum over
    ``wire_span_id * 2 + role`` (role 0 source, 1 destination) — which
    reproduces the in-memory first-appearance order for an id-ordered
    span log.
    """

    def __init__(self) -> None:
        # ctx -> canonical rank key (min wire_span_id * 2 + role).
        self._ctx_key: dict[int, int] = {}
        # ctx -> [messages_in, messages_out, bytes_in, bytes_out,
        #         undelivered]
        self._nodes: dict[int, list] = {}
        # (src_ctx, dst_ctx, method) -> [messages, bytes, wire_ns,
        #                                detect_ns]
        self._edges: dict[tuple[int, int, str], list] = {}
        self.dropped_spans = 0

    def add_rsr(self, spans: _t.Sequence[Span]) -> None:
        """Fold one RSR's spans (or any self-contained span group —
        parent links must not point outside ``spans``)."""
        if len(spans) > 1:
            spans = sorted(spans, key=lambda s: s.id)
        for (wid, src_ctx, dst_ctx, method, nbytes, wire_s, detect_s,
             delivered) in _delivery_edges(spans):
            key = wid * 2
            cur = self._ctx_key.get(src_ctx)
            if cur is None or key < cur:
                self._ctx_key[src_ctx] = key
            src = self._nodes.get(src_ctx)
            if src is None:
                src = self._nodes[src_ctx] = [0, 0, 0, 0, 0]
            if not delivered:
                src[4] += 1
                continue
            key = wid * 2 + 1
            cur = self._ctx_key.get(dst_ctx)
            if cur is None or key < cur:
                self._ctx_key[dst_ctx] = key
            dst = self._nodes.get(dst_ctx)
            if dst is None:
                dst = self._nodes[dst_ctx] = [0, 0, 0, 0, 0]
            edge = self._edges.get((src_ctx, dst_ctx, method))
            if edge is None:
                edge = self._edges[(src_ctx, dst_ctx, method)] = [0, 0, 0, 0]
            edge[0] += 1
            edge[1] += nbytes
            edge[2] += int(round(wire_s * 1e9))
            edge[3] += int(round(detect_s * 1e9))
            src[1] += 1
            src[3] += nbytes
            dst[0] += 1
            dst[2] += nbytes

    def finish(self, *, names: _t.Mapping[int, tuple[str, str]] | None = None
               ) -> CommGraph:
        """Materialise the folded graph with dense canonical ranks."""
        graph = CommGraph()
        graph.dropped_spans = self.dropped_spans
        names = names or {}
        order = sorted(self._ctx_key, key=lambda ctx: self._ctx_key[ctx])
        ranks: dict[int, int] = {}
        for rank, ctx in enumerate(order):
            ranks[ctx] = rank
            component, host = names.get(ctx, (f"ctx{rank}", "?"))
            m_in, m_out, b_in, b_out, undelivered = self._nodes[ctx]
            graph.nodes[rank] = GraphNode(
                rank=rank, component=component, host=host,
                messages_in=m_in, messages_out=m_out,
                bytes_in=b_in, bytes_out=b_out, undelivered=undelivered)
        for (src_ctx, dst_ctx, method), agg in self._edges.items():
            key = (ranks[src_ctx], ranks[dst_ctx], method)
            graph.edges[key] = GraphEdge(
                src=key[0], dst=key[1], method=method,
                messages=agg[0], bytes=agg[1],
                wire_s=agg[2] / 1e9, detect_s=agg[3] / 1e9)
        return graph


def extract_graph(source: "Observability | _t.Sequence[Span]", *,
                  nexus: "Nexus | None" = None,
                  allow_partial: bool = False) -> CommGraph:
    """Extract the communication graph from a span log.

    ``source`` is an :class:`Observability` or a raw span sequence;
    passing ``nexus`` labels nodes with context/host names (otherwise
    components render as ``ctx<rank>`` / host ``?``).  A source that
    recorded capacity drops has holes in its parent links, so by
    default extraction raises :class:`TraceIncompleteError`; with
    ``allow_partial=True`` the graph is built anyway and carries the
    drop count in :attr:`CommGraph.dropped_spans`.
    """
    spans = source.spans if isinstance(source, Observability) else source
    dropped = (source.dropped_spans
               if isinstance(source, Observability) else 0)
    if dropped and not allow_partial:
        raise TraceIncompleteError(
            f"span log dropped {dropped} spans at capacity; the graph "
            f"would have missing edges (pass allow_partial=True to "
            f"build it anyway, annotated)")
    names: dict[int, tuple[str, str]] = {}
    if nexus is not None:
        names = {context.id: (context.name, context.host.name)
                 for context in nexus.contexts.values()}
    builder = GraphBuilder()
    builder.add_rsr(spans)
    builder.dropped_spans = dropped
    return builder.finish(names=names)


# -- partition cost -----------------------------------------------------------

@dataclasses.dataclass
class PartitionCosts:
    """:func:`evaluate_partition`'s result, indexable like the plain
    dict it used to be (``costs["cross"]["bytes"]`` keeps working) with
    the planner's extra fields as first-class attributes."""

    partitions: list[str]
    intra: dict[str, float]
    cross: dict[str, float]
    cut_fraction_bytes: float | None
    cross_messages_per_method: dict[str, int]
    #: Cut bytes split by transport method (the planner's per-link view).
    cross_bytes_per_method: dict[str, int]
    #: Max partition traffic weight over the mean — 1.0 is perfectly
    #: balanced; ``None`` when the assignment is empty or weightless.
    imbalance: float | None

    def __getitem__(self, key: str) -> object:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: object = None) -> object:
        return getattr(self, key, default)

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


def evaluate_partition(graph: CommGraph,
                       assignment: _t.Mapping[int, str]
                       ) -> PartitionCosts:
    """Split the graph's traffic by a rank → partition assignment.

    The cost summary the placement planner minimises: cross-partition
    messages/bytes/wire time versus intra-partition, the cut fraction
    and per-method cut shares, plus the normalized traffic imbalance of
    the parts.  Ranks missing from ``assignment`` land in partition
    ``"?"``.
    """
    intra = {"messages": 0, "bytes": 0, "wire_s": 0.0}
    cross = {"messages": 0, "bytes": 0, "wire_s": 0.0}
    per_method_cross: dict[str, int] = {}
    per_method_cross_bytes: dict[str, int] = {}
    for edge in graph.edge_list():
        side = (intra if assignment.get(edge.src, "?")
                == assignment.get(edge.dst, "?") else cross)
        side["messages"] += edge.messages
        side["bytes"] += edge.bytes
        side["wire_s"] += edge.wire_s
        if side is cross:
            per_method_cross[edge.method] = (
                per_method_cross.get(edge.method, 0) + edge.messages)
            per_method_cross_bytes[edge.method] = (
                per_method_cross_bytes.get(edge.method, 0) + edge.bytes)
    total_bytes = intra["bytes"] + cross["bytes"]
    part_weight: dict[str, float] = {}
    for rank, node in graph.nodes.items():
        label = assignment.get(rank, "?")
        part_weight[label] = (part_weight.get(label, 0.0)
                              + node.bytes_in + node.bytes_out)
    imbalance: float | None = None
    if part_weight and sum(part_weight.values()) > 0:
        mean = sum(part_weight.values()) / len(part_weight)
        imbalance = max(part_weight.values()) / mean
    return PartitionCosts(
        partitions=sorted(set(assignment.values())),
        intra=intra,
        cross=cross,
        cut_fraction_bytes=(cross["bytes"] / total_bytes
                            if total_bytes else None),
        cross_messages_per_method=dict(sorted(per_method_cross.items())),
        cross_bytes_per_method=dict(sorted(
            per_method_cross_bytes.items())),
        imbalance=imbalance,
    )


# -- export -------------------------------------------------------------------

def graph_document(graph: CommGraph, *,
                   meta: _t.Mapping[str, object] | None = None
                   ) -> dict[str, object]:
    """The graph as a JSON-ready, deterministic document."""
    document: dict[str, object] = {
        "schema": GRAPH_SCHEMA,
        "schema_version": GRAPH_SCHEMA_VERSION,
        "nodes": [dataclasses.asdict(node) for node in graph.node_list()],
        "edges": [dataclasses.asdict(edge) for edge in graph.edge_list()],
        "total_messages": graph.total_messages,
        "total_bytes": graph.total_bytes,
        "meta": dict(meta) if meta else {},
    }
    if graph.dropped_spans:
        # Loud annotation: this graph was built from a lossy span log.
        document["dropped_spans"] = graph.dropped_spans
    return document


def dumps_graph(graph: CommGraph, *,
                meta: _t.Mapping[str, object] | None = None) -> str:
    return json.dumps(graph_document(graph, meta=meta),
                      **_JSON_KW)  # type: ignore[arg-type]


def write_graph(path: str, graph: CommGraph, *,
                meta: _t.Mapping[str, object] | None = None) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_graph(graph, meta=meta))
        handle.write("\n")


def dot_graph(graph: CommGraph, *, title: str = "commgraph") -> str:
    """Graphviz DOT rendering: one cluster per host, edges labelled
    ``method: messages / bytes`` with pen width scaled by bytes."""
    lines = [f'digraph "{title}" {{',
             "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    hosts: dict[str, list[GraphNode]] = {}
    for node in graph.node_list():
        hosts.setdefault(node.host, []).append(node)
    for index, host in enumerate(sorted(hosts)):
        lines.append(f'  subgraph "cluster_{index}" {{')
        lines.append(f'    label="{host}";')
        for node in hosts[host]:
            extra = (f"\\n!{node.undelivered} undelivered"
                     if node.undelivered else "")
            lines.append(
                f'    n{node.rank} [label="{node.component}\\n'
                f'in {node.messages_in} out {node.messages_out}{extra}"];')
        lines.append("  }")
    max_bytes = max((edge.bytes for edge in graph.edges.values()),
                    default=0)
    for edge in graph.edge_list():
        width = 1.0 + (3.0 * edge.bytes / max_bytes if max_bytes else 0.0)
        lines.append(
            f'  n{edge.src} -> n{edge.dst} '
            f'[label="{edge.method}: {edge.messages} msg / '
            f'{edge.bytes} B", penwidth={width:.2f}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(path: str, graph: CommGraph, *,
              title: str = "commgraph") -> None:
    with open(path, "w") as handle:
        handle.write(dot_graph(graph, title=title))


__all__ = [
    "GRAPH_SCHEMA",
    "GRAPH_SCHEMA_VERSION",
    "CommGraph",
    "GraphBuilder",
    "GraphEdge",
    "GraphNode",
    "PartitionCosts",
    "dot_graph",
    "dumps_graph",
    "evaluate_partition",
    "extract_graph",
    "graph_document",
    "write_dot",
    "write_graph",
]
