"""SLO declaration, evaluation, and report attachment."""

import pytest

from repro.load import (
    FixedSize,
    FleetSpec,
    LoadScenario,
    LoadSpecError,
    OpenLoop,
    SLO,
    evaluate,
    run_scenario,
)


@pytest.fixture(scope="module")
def result():
    scenario = LoadScenario(
        name="slo-run",
        fleets=(FleetSpec("rpc", clients=4, arrival=OpenLoop(rate=50.0),
                          sizes=FixedSize(2048), route="remote"),),
        duration=0.2)
    return run_scenario(scenario)


class TestSLOSpec:
    def test_requires_at_least_one_objective(self):
        with pytest.raises(LoadSpecError):
            SLO(name="empty")

    def test_rejects_nonpositive_latency_budget(self):
        with pytest.raises(LoadSpecError):
            SLO(p99_latency_us=0.0)

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(LoadSpecError):
            SLO(max_drop_fraction=1.5)
        with pytest.raises(LoadSpecError):
            SLO(min_goodput_fraction=-0.1)

    def test_objectives_lists_configured_budgets(self):
        slo = SLO(p99_latency_us=1000.0, max_drop_fraction=0.01)
        assert set(slo.objectives()) == {"p99_latency_us",
                                         "max_drop_fraction"}


class TestEvaluate:
    def test_generous_budgets_pass(self, result):
        verdict = evaluate(result, SLO(name="easy",
                                       p99_latency_us=1e7,
                                       min_delivered_fraction=0.5,
                                       max_drop_fraction=0.5,
                                       max_retry_fraction=0.5))
        assert verdict.passed
        assert not verdict.failed_objectives()

    def test_impossible_latency_budget_fails(self, result):
        verdict = evaluate(result, SLO(name="harsh", p50_latency_us=0.5))
        assert not verdict.passed
        failed = verdict.failed_objectives()
        assert [o.objective for o in failed] == ["p50_latency_us"]
        assert failed[0].actual is not None
        assert failed[0].actual > 0.5

    def test_goodput_detects_healthy_run(self, result):
        verdict = evaluate(result, SLO(min_goodput_fraction=0.8))
        assert verdict.passed

    def test_verdict_attaches_to_report(self, result):
        verdict = evaluate(result, SLO(name="attach", p99_latency_us=1e7))
        assert result.report.slo is not None
        assert result.report.slo["slo"] == "attach"
        assert result.report.slo["passed"] == verdict.passed
        assert result.report.as_dict()["slo"] == verdict.as_dict()

    def test_summary_marks_violations(self, result):
        verdict = evaluate(result, SLO(p50_latency_us=0.5))
        assert "FAIL" in verdict.summary()
        assert "VIOLATED" in verdict.summary()

    def test_quantile_budget_is_conservative(self, result):
        # A budget exactly at the measured quantile passes (bucket upper
        # bound semantics: actual == bucket bound).
        p99 = result.quantile_us(0.99)
        verdict = evaluate(result, SLO(p99_latency_us=p99))
        assert verdict.passed

    def test_missing_signal_fails_not_passes(self, result):
        # min_delivered_rate against a result is fine; craft the missing
        # case instead via ObjectiveResult semantics on a zero-offered
        # scenario: latency budget with empty histogram.
        from repro.load.slo import ObjectiveResult, _upper

        assert not _upper(None, 100.0)
        missing = ObjectiveResult(objective="p99_latency_us", limit=1.0,
                                  actual=None, passed=False)
        assert not missing.passed
