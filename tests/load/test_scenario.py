"""LoadScenario / FleetSpec validation and rate-scaling algebra."""

import dataclasses

import pytest

from repro.load import (
    ClosedLoop,
    FixedSize,
    FleetSpec,
    LoadScenario,
    LoadSpecError,
    OpenLoop,
)


def _fleet(**overrides):
    spec = dict(name="rpc", clients=4, arrival=OpenLoop(rate=10.0),
                sizes=FixedSize(1024), route="remote")
    spec.update(overrides)
    return FleetSpec(**spec)


def _scenario(**overrides):
    spec = dict(name="s", fleets=(_fleet(),), duration=1.0)
    spec.update(overrides)
    return LoadScenario(**spec)


class TestFleetSpec:
    def test_open_rate_sums_clients(self):
        assert _fleet(clients=4).open_rate == 40.0

    def test_closed_loop_fleet_offers_no_open_rate(self):
        fleet = _fleet(arrival=ClosedLoop(think_time=0.1))
        assert fleet.open_rate == 0.0

    def test_rejects_zero_clients(self):
        with pytest.raises(LoadSpecError):
            _fleet(clients=0)

    def test_rejects_unknown_route(self):
        with pytest.raises(LoadSpecError):
            _fleet(route="sideways")

    def test_rejects_negative_service(self):
        with pytest.raises(LoadSpecError):
            _fleet(service_ops=-1)
        with pytest.raises(LoadSpecError):
            _fleet(service_time=-0.1)


class TestScenarioValidation:
    def test_rejects_empty_fleets(self):
        with pytest.raises(LoadSpecError):
            _scenario(fleets=())

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(LoadSpecError):
            _scenario(duration=0.0)

    def test_rejects_duplicate_fleet_names(self):
        with pytest.raises(LoadSpecError):
            _scenario(fleets=(_fleet(), _fleet()))

    def test_rejects_local_route_without_local_servers(self):
        with pytest.raises(LoadSpecError):
            _scenario(fleets=(_fleet(route="local"),), local_servers=0)

    def test_local_servers_optional_for_remote_only(self):
        scenario = _scenario(local_servers=0)
        assert scenario.local_servers == 0

    def test_skip_map(self):
        scenario = _scenario(skip_poll=(("tcp", 8), ("udp", 2)))
        assert scenario.skip_map() == {"tcp": 8, "udp": 2}


class TestRateScaling:
    def test_scaled_multiplies_open_rates_only(self):
        closed = _fleet(name="bg", arrival=ClosedLoop(think_time=0.1))
        scenario = _scenario(fleets=(_fleet(), closed))
        doubled = scenario.scaled(2.0)
        assert doubled.open_rate == 80.0
        assert doubled.fleets[1].arrival == closed.arrival

    def test_at_rate_targets_total(self):
        scenario = _scenario()      # 4 clients x 10/s = 40/s
        assert scenario.at_rate(100.0).open_rate == pytest.approx(100.0)

    def test_at_rate_requires_open_fleet(self):
        scenario = _scenario(
            fleets=(_fleet(arrival=ClosedLoop(think_time=0.1)),))
        with pytest.raises(LoadSpecError):
            scenario.at_rate(100.0)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(LoadSpecError):
            _scenario().scaled(0.0)

    def test_scaling_preserves_identity_fields(self):
        scenario = _scenario(skip_poll=(("tcp", 4),), seed=9)
        scaled = scenario.scaled(3.0)
        assert scaled.seed == 9
        assert scaled.skip_poll == (("tcp", 4),)
        assert scaled.name == scenario.name

    def test_scenarios_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _scenario().duration = 2.0
