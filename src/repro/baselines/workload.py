"""A mixed intra/inter-partition workload runnable over p4, PVM, and Nexus.

Four processes, two per SP2 partition.  The traffic shape is a
:class:`~repro.load.arrivals.MixedRoundPattern` — each round every
process exchanges ``local_bytes`` with its partition-local partner;
every ``remote_every`` rounds it also exchanges ``remote_bytes`` with
its counterpart in the other partition.  The same pattern runs over:

* ``"p4"``    — hard-coded MPL/TCP, both polled always;
* ``"pvm"``   — hard-coded MPL + mandatory pvmd relay for external;
* ``"nexus"`` — mini-MPI on the full multimethod stack, with a
  configurable TCP ``skip_poll`` (the knob the baselines lack).

The interesting comparison (``benchmarks/bench_baselines.py``):
Nexus at ``skip_poll=1`` matches p4's cost structure; *tuned* Nexus
beats p4 (nothing in p4 can express "check TCP less often"); PVM's
forced relay is slowest for external traffic.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..core.runtime import Nexus
from ..load.arrivals import MixedRoundPattern
from ..mpi.datatypes import Padded
from ..mpi.mpi import MPIWorld
from ..testbeds import make_sp2
from .p4 import P4System
from .pvm import PvmSystem

TAG_LOCAL = 1
TAG_REMOTE = 2


@dataclasses.dataclass(frozen=True)
class MixedWorkloadResult:
    """Outcome of one mixed-workload run."""

    system: str
    skip_poll: int
    rounds: int
    total_time: float

    @property
    def time_per_round(self) -> float:
        return self.total_time / self.rounds


def _partners(pid: int) -> tuple[int, int]:
    """(local partner, remote counterpart) for the 2+2 layout."""
    local = pid ^ 1
    remote = (pid + 2) % 4
    return local, remote


def run_mixed_workload(system: str, *, rounds: int = 30,
                       local_bytes: int = 2048,
                       remote_bytes: int = 16 * 1024,
                       remote_every: int = 5,
                       skip_poll: int = 1) -> MixedWorkloadResult:
    """Run the workload over one system; returns total virtual time."""
    bed = make_sp2(nodes_a=2, nodes_b=2)
    nexus = bed.nexus
    contexts = [nexus.context(h, f"p{i}") for i, h in enumerate(bed.hosts)]
    pattern = MixedRoundPattern(local_bytes=local_bytes,
                                remote_bytes=remote_bytes,
                                remote_every=remote_every)

    if system == "nexus":
        bodies = _nexus_bodies(nexus, contexts, rounds, pattern, skip_poll)
    elif system == "p4":
        bodies = _baseline_bodies(P4System(nexus, contexts), rounds, pattern)
    elif system == "pvm":
        bodies = _baseline_bodies(PvmSystem.build(nexus, contexts), rounds,
                                  pattern)
    else:
        raise ValueError(f"unknown system {system!r}")

    handles = [nexus.spawn(body, name=f"{system}:p{i}")
               for i, body in enumerate(bodies)]
    nexus.run(until=nexus.sim.all_of(handles))
    return MixedWorkloadResult(
        system=system,
        skip_poll=skip_poll if system == "nexus" else 1,
        rounds=rounds,
        total_time=nexus.now,
    )


def _baseline_bodies(system: P4System | PvmSystem, rounds: int,
                     pattern: MixedRoundPattern) -> list[_t.Generator]:
    def body(pid: int):
        proc = system.process(pid)
        local, remote = _partners(pid)
        for op in pattern.rounds(rounds):
            yield from proc.send(local, TAG_LOCAL, op.local_bytes)
            yield from proc.recv(TAG_LOCAL)
            if op.remote_bytes is not None:
                yield from proc.send(remote, TAG_REMOTE, op.remote_bytes)
                yield from proc.recv(TAG_REMOTE)

    return [body(pid) for pid in range(4)]


def _nexus_bodies(nexus: Nexus, contexts, rounds: int,
                  pattern: MixedRoundPattern,
                  skip_poll: int) -> list[_t.Generator]:
    for ctx in contexts:
        ctx.poll_manager.set_skip("tcp", skip_poll)
    world = MPIWorld(nexus, contexts)

    def body(pid: int):
        proc = world.process(pid)
        local, remote = _partners(pid)
        for op in pattern.rounds(rounds):
            yield from proc.sendrecv(Padded(None, op.local_bytes), local,
                                     TAG_LOCAL, local, TAG_LOCAL)
            if op.remote_bytes is not None:
                yield from proc.sendrecv(Padded(None, op.remote_bytes),
                                         remote, TAG_REMOTE, remote,
                                         TAG_REMOTE)

    return [body(pid) for pid in range(4)]
