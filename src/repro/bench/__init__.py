"""repro.bench — experiment drivers regenerating the paper's evaluation.

One module per paper artefact:

* :mod:`repro.bench.figure4` — one-way ping-pong time vs message size
  (raw MPL / Nexus single-method / Nexus multimethod), both panels.
* :mod:`repro.bench.figure6` — dual ping-pong one-way times vs
  ``skip_poll``, 0-byte and 10 kB panels.
* :mod:`repro.bench.table1` — coupled-model seconds/timestep for every
  Table 1 row plus the all-TCP baseline.
* :mod:`repro.bench.ablations` — blocking-handler polling, the
  MPI-layering cost, adaptive skip_poll, and the lightweight-startpoint
  optimisation.

Each driver returns :class:`~repro.util.records.Series` /
:class:`~repro.util.records.ResultTable` objects, renders them in the
paper's row/series format, and provides ``check_shape`` functions with
the qualitative criteria from DESIGN.md.  The ``benchmarks/`` pytest
files are thin wrappers over these drivers.
"""

from .figure4 import figure4, check_figure4_shape
from .figure6 import figure6, check_figure6_shape
from .table1 import table1, check_table1_shape
from .ablations import (
    ablation_adaptive_skip,
    ablation_blocking_poll,
    ablation_lightweight_startpoints,
    ablation_mpi_layering,
    ablation_rendezvous,
)

__all__ = [
    "ablation_adaptive_skip",
    "ablation_blocking_poll",
    "ablation_lightweight_startpoints",
    "ablation_mpi_layering",
    "ablation_rendezvous",
    "check_figure4_shape",
    "check_figure6_shape",
    "check_table1_shape",
    "figure4",
    "figure6",
    "table1",
]
