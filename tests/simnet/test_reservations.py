"""Tests for QoS bandwidth reservations (Section 2's channel-based QoS)."""

import pytest

from repro.simnet import LinkProfile, Network, Simulator
from repro.simnet.errors import SimnetError
from repro.util.units import mbps, milliseconds

LINK = LinkProfile("wan", latency=milliseconds(5.0), bandwidth=mbps(10.0))


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim)
    m1 = network.new_machine("m1")
    m2 = network.new_machine("m2")
    network.connect(m1, m2, LINK)
    m1.new_host()
    m2.new_host()
    return network, m1, m2


class TestReserve:
    def test_reserve_reduces_available(self, net):
        network, m1, m2 = net
        a, b = m1.hosts[0], m2.hosts[0]
        assert network.available_bandwidth(a, b) == mbps(10.0)
        reservation = network.reserve(m1, m2, mbps(4.0))
        assert network.available_bandwidth(a, b) == pytest.approx(mbps(6.0))
        reservation.release()
        assert network.available_bandwidth(a, b) == pytest.approx(mbps(10.0))

    def test_release_idempotent(self, net):
        network, m1, m2 = net
        reservation = network.reserve(m1, m2, mbps(2.0))
        reservation.release()
        reservation.release()
        a, b = m1.hosts[0], m2.hosts[0]
        assert network.available_bandwidth(a, b) == pytest.approx(mbps(10.0))

    def test_admission_control(self, net):
        network, m1, m2 = net
        network.reserve(m1, m2, mbps(8.0))
        with pytest.raises(SimnetError, match="admission"):
            network.reserve(m1, m2, mbps(4.0))

    def test_bad_bandwidth_rejected(self, net):
        network, m1, m2 = net
        with pytest.raises(SimnetError):
            network.reserve(m1, m2, 0.0)

    def test_unreachable_rejected(self, net):
        network, m1, _m2 = net
        island = network.new_machine("island")
        with pytest.raises(SimnetError, match="route"):
            network.reserve(m1, island, mbps(1.0))

    def test_reservation_bumps_epoch(self, net):
        network, m1, m2 = net
        epoch = network.epoch
        reservation = network.reserve(m1, m2, mbps(1.0))
        assert network.epoch == epoch + 1
        reservation.release()
        assert network.epoch == epoch + 2

    def test_same_machine_available_is_switch(self):
        sim = Simulator()
        network = Network(sim)
        machine = network.new_machine("m", {"tcp": LINK})
        a, b = machine.new_hosts(2)
        assert network.available_bandwidth(a, b, "tcp") == LINK.bandwidth
        assert network.available_bandwidth(a, b) == float("inf")


class TestReservedChannels:
    def test_reserved_channel_gets_guaranteed_rate(self):
        """A startpoint whose descriptor carries reserved_bandwidth moves
        data at the reserved rate, not the raw link rate."""
        from repro.core.buffers import Buffer
        from repro.testbeds import make_iway
        from repro.util.units import MB

        def run(reserved):
            bed = make_iway()
            nexus = bed.nexus
            a = nexus.context(bed.sp2_hosts[0], methods=("local", "tcp"))
            b = nexus.context(bed.instrument_host, methods=("local", "tcp"))
            log = []
            b.register_handler("h", lambda c, e, buf: log.append(nexus.now))
            sp = a.startpoint_to(b.new_endpoint())
            if reserved is not None:
                table = sp.links[0].table
                table.replace("tcp", table.entry("tcp").with_param(
                    "reserved_bandwidth", reserved))

            def sender():
                yield from sp.rsr("h", Buffer().put_padding(4 * MB))

            def receiver():
                yield from b.wait(lambda: bool(log))

            done = nexus.spawn(receiver())
            nexus.spawn(sender())
            nexus.run(until=done)
            return log[0]

        slow_path = run(None)                   # 1 MB/s site link bottleneck
        fast_channel = run(4.0 * 1024 * 1024)   # 4 MB/s reserved PVC
        assert fast_channel < slow_path / 2

    def test_qos_policy_uses_available_bandwidth(self):
        """QoSAware(use_available=True) must reject a method whose raw
        bandwidth qualifies but whose unreserved share does not."""
        from repro.core.selection import QoSAware
        from repro.testbeds import make_iway
        from repro.util.units import mbps as _mbps

        bed = make_iway()
        nexus = bed.nexus
        a = nexus.context(bed.sp2_hosts[0])
        b = nexus.context(bed.cave_host)

        policy_raw = QoSAware(min_bandwidth=_mbps(10.0), strict=True)
        policy_avail = QoSAware(min_bandwidth=_mbps(10.0), strict=True,
                                use_available=True)
        sp = a.startpoint_to(b.new_endpoint())

        # Raw: aal5's 16 MB/s path qualifies either way.
        assert policy_raw.select(a, sp.links[0].table, b.host).method == \
            "aal5"
        # Reserve most of the ATM link; available drops below 10 MB/s.
        nexus.network.reserve(bed.sp2, bed.cave, _mbps(10.0),
                              transport="aal5")
        assert policy_raw.select(a, sp.links[0].table, b.host).method == \
            "aal5"
        from repro.core.errors import SelectionError
        with pytest.raises(SelectionError):
            policy_avail.select(a, sp.links[0].table, b.host)
