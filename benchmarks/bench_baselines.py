"""Baseline comparison: Nexus multimethod vs p4-style vs PVM-style.

Section 5 positions Nexus against systems where "the choice of method is
hard coded and cannot be extended or changed": p4 (two methods in one
process, both polled always) and PVM (a forwarding daemon for external
traffic).  This benchmark runs one mixed intra/inter-partition workload
over all three and checks the structural expectations:

* Nexus at ``skip_poll=1`` matches p4's cost (same architecture, no
  tuning applied);
* *tuned* Nexus beats p4 — p4 has no way to express "check TCP less
  often", which is exactly the paper's contribution;
* PVM's mandatory task→pvmd→pvmd→task relay is the slowest external
  path.
"""

from repro.baselines import run_mixed_workload
from repro.bench import record_baselines
from repro.util.records import ResultTable


def test_baselines(run_once, bench_record):
    def drive():
        rows = {}
        rows["p4 (hard-coded, full polling)"] = run_mixed_workload("p4")
        rows["pvm (daemon relay)"] = run_mixed_workload("pvm")
        rows["nexus skip_poll=1"] = run_mixed_workload("nexus", skip_poll=1)
        for skip in (5, 10, 20, 50):
            rows[f"nexus skip_poll={skip}"] = run_mixed_workload(
                "nexus", skip_poll=skip)
        return rows

    rows = run_once(drive)
    record_baselines(bench_record, rows)
    table = ResultTable("Mixed workload: prior art vs multimethod Nexus",
                        ["ms/round"])
    for label, result in rows.items():
        table.add(label, result.time_per_round * 1e3)
    print()
    print(table.render())

    p4 = rows["p4 (hard-coded, full polling)"].time_per_round
    pvm = rows["pvm (daemon relay)"].time_per_round
    untuned = rows["nexus skip_poll=1"].time_per_round
    tuned = min(result.time_per_round for label, result in rows.items()
                if label.startswith("nexus skip_poll=")
                and result.skip_poll > 1)

    # Same architecture, same cost: untuned Nexus within 5% of p4.
    assert abs(untuned - p4) / p4 < 0.05
    # The knob p4 lacks buys real time.
    assert tuned < p4 * 0.99
    # The mandatory relay is the slowest option for this traffic mix.
    assert pvm > p4
    assert pvm > tuned
