"""repro.bench — experiment drivers regenerating the paper's evaluation.

One module per paper artefact:

* :mod:`repro.bench.figure4` — one-way ping-pong time vs message size
  (raw MPL / Nexus single-method / Nexus multimethod), both panels.
* :mod:`repro.bench.figure6` — dual ping-pong one-way times vs
  ``skip_poll``, 0-byte and 10 kB panels.
* :mod:`repro.bench.table1` — coupled-model seconds/timestep for every
  Table 1 row plus the all-TCP baseline.
* :mod:`repro.bench.ablations` — blocking-handler polling, the
  MPI-layering cost, adaptive skip_poll, and the lightweight-startpoint
  optimisation.
* :mod:`repro.bench.load` — the load tier: SLO-gated workload
  scenarios and the tuned-polling vs forwarding capacity comparison
  (:mod:`repro.load`).
* :mod:`repro.bench.analysis` — the analysis tier: windowed chaos
  telemetry with recovery time, the communication graph of the
  forwarding run, and critical-path attribution (:mod:`repro.obs`).

Each driver returns :class:`~repro.util.records.Series` /
:class:`~repro.util.records.ResultTable` objects, renders them in the
paper's row/series format, and provides ``check_shape`` functions with
the qualitative criteria from DESIGN.md.  The ``benchmarks/`` pytest
files are thin wrappers over these drivers.

:mod:`repro.bench.record` gives the same numbers a machine-readable
form: a schema-versioned, byte-deterministic ``BENCH_<label>.json``
document per run plus the baseline regression gate behind
``python -m repro.bench --baseline BASE.json --check``.
"""

from .analysis import AnalysisBench, analysis_bench, check_analysis_shape
from .figure4 import figure4, check_figure4_shape
from .figure6 import figure6, check_figure6_shape
from .load import LoadBench, check_load_shape, load_bench
from .record import (
    BenchRecord,
    compare_records,
    load_record,
    record_ablations,
    record_analysis,
    record_baselines,
    record_figure4,
    record_figure6,
    record_load,
    record_observability,
    record_table1,
    record_windowed,
    validate_record_document,
)
from .table1 import table1, check_table1_shape
from .ablations import (
    ablation_adaptive_skip,
    ablation_blocking_poll,
    ablation_lightweight_startpoints,
    ablation_mpi_layering,
    ablation_rendezvous,
)

__all__ = [
    "AnalysisBench",
    "BenchRecord",
    "LoadBench",
    "ablation_adaptive_skip",
    "analysis_bench",
    "ablation_blocking_poll",
    "ablation_lightweight_startpoints",
    "ablation_mpi_layering",
    "ablation_rendezvous",
    "check_analysis_shape",
    "check_figure4_shape",
    "check_figure6_shape",
    "check_load_shape",
    "check_table1_shape",
    "compare_records",
    "figure4",
    "figure6",
    "load_bench",
    "load_record",
    "record_ablations",
    "record_analysis",
    "record_baselines",
    "record_figure4",
    "record_figure6",
    "record_load",
    "record_observability",
    "record_table1",
    "record_windowed",
    "table1",
    "validate_record_document",
]
