"""Property-based tests for the MPI layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import Buffer
from repro.mpi.datatypes import Padded, pack_payload, unpack_payload
from repro.mpi.matching import MatchingQueues, MpiMessage
from repro.mpi.status import ANY_SOURCE, ANY_TAG

# -- payload roundtrip over arbitrary nested structures -------------------------

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.integers(min_value=-(2 ** 60), max_value=2 ** 60),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=30),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.tuples(children),
        st.tuples(children, children),
        st.tuples(children, children, children),
        st.builds(Padded, children,
                  st.integers(min_value=0, max_value=10_000)),
    ),
    max_leaves=10,
)


def strip_padding(value):
    """The expected unpack result: Padded wrappers dissolve."""
    if isinstance(value, Padded):
        return strip_padding(value.value)
    if isinstance(value, tuple):
        return tuple(strip_padding(v) for v in value)
    return value


@given(payloads)
@settings(max_examples=150, deadline=None)
def test_payload_roundtrip(value):
    buffer = Buffer()
    pack_payload(buffer, value)
    assert unpack_payload(buffer) == strip_padding(value)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=60))
@settings(max_examples=50, deadline=None)
def test_array_payload_roundtrip(values):
    array = np.array(values, dtype=np.int64)
    buffer = Buffer()
    pack_payload(buffer, array)
    assert np.array_equal(unpack_payload(buffer), array)


# -- matching-queue invariants ------------------------------------------------------

deliveries = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),    # source
              st.integers(min_value=0, max_value=3)),   # tag
    min_size=0, max_size=25,
)
receives = st.lists(
    st.tuples(st.sampled_from([ANY_SOURCE, 0, 1, 2, 3]),
              st.sampled_from([ANY_TAG, 0, 1, 2, 3])),
    min_size=0, max_size=25,
)


@given(deliveries, receives, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_matching_conserves_messages(sends, recvs, rng):
    """However sends and receives interleave: every message ends up in
    exactly one place (matched to one receive, or unexpected), and every
    receive is either complete or still posted."""
    queues = MatchingQueues()
    posted = []
    send_queue = list(sends)
    recv_queue = list(recvs)
    sequence = 0
    while send_queue or recv_queue:
        pick_send = send_queue and (not recv_queue or rng.random() < 0.5)
        if pick_send:
            source, tag = send_queue.pop(0)
            sequence += 1
            queues.deliver(MpiMessage(
                context_id=0, source=source, tag=tag,
                payload=sequence, nbytes=8,
                sent_at=float(sequence), arrived_at=float(sequence)))
        else:
            source, tag = recv_queue.pop(0)
            posted.append(queues.post(0, source, tag))

    matched = [p for p in posted if p.complete]
    unmatched = [p for p in posted if not p.complete]
    # conservation: every sent message is matched or unexpected
    assert len(matched) + len(queues.unexpected) == len(sends)
    # every incomplete posted receive is still in the queue
    assert len(queues.posted) == len(unmatched)
    # no message matched twice
    payloads_seen = [p.message.payload for p in matched]
    assert len(set(payloads_seen)) == len(payloads_seen)
    # matched pairs actually satisfy the wildcard rules
    for p in matched:
        assert p.source in (ANY_SOURCE, p.message.source)
        assert p.tag in (ANY_TAG, p.message.tag)


@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                max_size=15))
@settings(max_examples=50, deadline=None)
def test_matching_fifo_per_source(tags_from_one_source):
    """Messages from one source with one tag match receives in send
    order (MPI non-overtaking, single pair)."""
    queues = MatchingQueues()
    for index, _tag in enumerate(tags_from_one_source):
        queues.deliver(MpiMessage(context_id=0, source=0, tag=7,
                                  payload=index, nbytes=8,
                                  sent_at=float(index),
                                  arrived_at=float(index)))
    results = []
    for _ in tags_from_one_source:
        posted = queues.post(0, 0, 7)
        results.append(posted.message.payload)
    assert results == list(range(len(tags_from_one_source)))


# -- end-to-end collective correctness vs numpy reference ------------------------------

@given(st.integers(min_value=1, max_value=5),
       st.lists(st.integers(min_value=-100, max_value=100), min_size=5,
                max_size=5))
@settings(max_examples=15, deadline=None)
def test_allreduce_matches_numpy(nranks, values):
    from .conftest import build_world, run_spmd

    values = values[:nranks]
    while len(values) < nranks:
        values.append(0)
    ranks_a = (nranks + 1) // 2
    bed, world = build_world(ranks_a, nranks - ranks_a)

    def body(proc):
        result = yield from proc.allreduce(values[proc.rank], "sum")
        return result

    results = run_spmd(bed, world, body)
    assert results == [int(np.sum(values))] * nranks
