"""Tests for the ASCII chart renderer."""

import pytest

from repro.util.ascii_chart import render_chart
from repro.util.records import Series


def series(name, points):
    s = Series(name)
    for x, y in points:
        s.add(x, y)
    return s


class TestRenderChart:
    def test_basic_layout(self):
        chart = render_chart(
            [series("up", [(0, 0.0), (5, 5.0), (10, 10.0)])],
            title="test chart", width=30, height=8)
        lines = chart.splitlines()
        assert lines[0] == "test chart"
        assert "up" in lines[-1]           # legend
        assert any("*" in line for line in lines)
        assert "10" in chart and "0" in chart  # y labels

    def test_two_series_distinct_glyphs(self):
        chart = render_chart([
            series("a", [(0, 1.0), (10, 2.0)]),
            series("b", [(0, 2.0), (10, 1.0)]),
        ], width=20, height=6)
        assert "*" in chart and "o" in chart
        assert "* a" in chart and "o b" in chart

    def test_extremes_hit_chart_edges(self):
        chart = render_chart(
            [series("s", [(0, 0.0), (10, 100.0)])], width=20, height=6)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "*" in rows[0]    # max value on the top row
        assert "*" in rows[-1]   # min value on the bottom row

    def test_log_axes(self):
        chart = render_chart(
            [series("s", [(1, 10.0), (10, 100.0), (100, 1000.0)])],
            width=30, height=8, log_x=True, log_y=True)
        assert "(log)" in chart

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_chart([series("s", [(0, 1.0), (2, 2.0)])], log_x=True)
        with pytest.raises(ValueError):
            render_chart([series("s", [(1, 0.0), (2, 2.0)])], log_y=True)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            render_chart([])
        with pytest.raises(ValueError):
            render_chart([Series("empty")])

    def test_constant_series(self):
        chart = render_chart([series("flat", [(0, 5.0), (10, 5.0)])],
                             width=20, height=5)
        assert "*" in chart  # degenerate y-range must not crash

    def test_figure6_shape_visible(self):
        """Smoke: the real Figure 6 data renders with both series."""
        mpl = series("mpl", [(1, 328.4), (5, 108.4), (20, 119.4),
                             (100, 114.0), (500, 109.5)])
        tcp = series("tcp", [(1, 2478.5), (5, 2710.0), (20, 2809.4),
                             (100, 4146.8), (500, 8760.0)])
        chart = render_chart([mpl, tcp], title="fig6", log_x=True,
                             width=60, height=14)
        assert chart.count("\n") >= 14


class TestSparkline:
    def test_maps_range_onto_the_ramp(self):
        from repro.util.ascii_chart import SPARK_RAMP, sparkline

        line = sparkline([0.0, 50.0, 100.0])
        assert len(line) == 3
        assert line[0] == SPARK_RAMP[0]
        assert line[-1] == SPARK_RAMP[-1]

    def test_none_renders_blank_not_low(self):
        from repro.util.ascii_chart import SPARK_RAMP, sparkline

        line = sparkline([1.0, None, 2.0])
        assert line[1] == " "              # n/a, distinct from measured low
        assert line[0] == SPARK_RAMP[0]

    def test_flat_series_uses_the_low_glyph(self):
        from repro.util.ascii_chart import SPARK_RAMP, sparkline

        assert sparkline([3.0, 3.0]) == SPARK_RAMP[0] * 2

    def test_pinned_scale(self):
        from repro.util.ascii_chart import SPARK_RAMP, sparkline

        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert abs(SPARK_RAMP.index(line) - len(SPARK_RAMP) // 2) <= 1

    def test_all_none_is_all_blank(self):
        from repro.util.ascii_chart import sparkline

        assert sparkline([None, None]) == "  "
