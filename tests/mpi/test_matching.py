"""Unit tests for the two-sided matching engine (no simulation needed)."""

import pytest

from repro.mpi.errors import MatchingError
from repro.mpi.matching import MatchingQueues, MpiMessage, PostedRecv
from repro.mpi.status import ANY_SOURCE, ANY_TAG


def msg(source=0, tag=0, context_id=0, payload="x", sent_at=0.0):
    return MpiMessage(context_id=context_id, source=source, tag=tag,
                      payload=payload, nbytes=8, sent_at=sent_at,
                      arrived_at=sent_at + 1.0)


class TestPostFirst:
    def test_exact_match(self):
        queues = MatchingQueues()
        posted = queues.post(0, source=1, tag=5)
        assert not posted.complete
        assert queues.deliver(msg(source=1, tag=5)) is posted
        assert posted.complete

    def test_wrong_tag_goes_unexpected(self):
        queues = MatchingQueues()
        posted = queues.post(0, source=1, tag=5)
        assert queues.deliver(msg(source=1, tag=6)) is None
        assert not posted.complete
        assert len(queues.unexpected) == 1

    def test_wildcards(self):
        queues = MatchingQueues()
        any_any = queues.post(0, ANY_SOURCE, ANY_TAG)
        assert queues.deliver(msg(source=3, tag=9)) is any_any

    def test_posted_order_is_fifo(self):
        queues = MatchingQueues()
        first = queues.post(0, ANY_SOURCE, ANY_TAG)
        second = queues.post(0, ANY_SOURCE, ANY_TAG)
        assert queues.deliver(msg()) is first
        assert queues.deliver(msg()) is second

    def test_context_separation(self):
        queues = MatchingQueues()
        posted = queues.post(7, ANY_SOURCE, ANY_TAG)
        assert queues.deliver(msg(context_id=8)) is None
        assert not posted.complete
        assert queues.deliver(msg(context_id=7)) is posted


class TestMessageFirst:
    def test_unexpected_then_post(self):
        queues = MatchingQueues()
        queues.deliver(msg(source=2, tag=3, payload="early"))
        posted = queues.post(0, source=2, tag=3)
        assert posted.complete
        assert posted.message.payload == "early"
        assert not queues.unexpected

    def test_earliest_unexpected_wins(self):
        queues = MatchingQueues()
        queues.deliver(msg(source=1, tag=0, payload="first", sent_at=0.0))
        queues.deliver(msg(source=1, tag=0, payload="second", sent_at=1.0))
        posted = queues.post(0, ANY_SOURCE, 0)
        assert posted.message.payload == "first"

    def test_filter_by_source(self):
        queues = MatchingQueues()
        queues.deliver(msg(source=1, payload="from1"))
        queues.deliver(msg(source=2, payload="from2"))
        posted = queues.post(0, source=2, tag=0)
        assert posted.message.payload == "from2"
        assert queues.unexpected[0].payload == "from1"

    def test_max_unexpected_watermark(self):
        queues = MatchingQueues()
        for index in range(5):
            queues.deliver(msg(tag=index))
        assert queues.max_unexpected == 5


class TestMisc:
    def test_probe_does_not_remove(self):
        queues = MatchingQueues()
        queues.deliver(msg(tag=4))
        assert queues.probe(0, ANY_SOURCE, 4) is not None
        assert queues.probe(0, ANY_SOURCE, 4) is not None
        assert queues.probe(0, ANY_SOURCE, 5) is None
        assert len(queues.unexpected) == 1

    def test_cancel(self):
        queues = MatchingQueues()
        posted = queues.post(0, ANY_SOURCE, ANY_TAG)
        queues.cancel(posted)
        assert queues.deliver(msg()) is None  # nothing posted anymore

    def test_cancel_matched_rejected(self):
        queues = MatchingQueues()
        posted = queues.post(0, ANY_SOURCE, ANY_TAG)
        queues.deliver(msg())
        with pytest.raises(MatchingError):
            queues.cancel(posted)

    def test_cancel_foreign_rejected(self):
        queues = MatchingQueues()
        foreign = PostedRecv(0, ANY_SOURCE, ANY_TAG)
        with pytest.raises(MatchingError):
            queues.cancel(foreign)

    def test_status_from_match(self):
        queues = MatchingQueues()
        posted = queues.post(0, ANY_SOURCE, ANY_TAG)
        queues.deliver(msg(source=4, tag=2, sent_at=10.0))
        status = posted.status(received_at=12.5)
        assert status.source == 4 and status.tag == 2
        assert status.transit_time == 2.5

    def test_status_before_match_rejected(self):
        posted = PostedRecv(0, ANY_SOURCE, ANY_TAG)
        with pytest.raises(MatchingError):
            posted.status(0.0)

    def test_matched_counter(self):
        queues = MatchingQueues()
        queues.post(0, ANY_SOURCE, ANY_TAG)
        queues.deliver(msg())
        queues.deliver(msg())
        queues.post(0, ANY_SOURCE, ANY_TAG)
        assert queues.messages_matched == 2
