"""Receive status objects (the MPI ``MPI_Status`` analogue)."""

from __future__ import annotations

import dataclasses

#: Wildcards (match any source rank / any tag).
ANY_SOURCE = -1
ANY_TAG = -1


@dataclasses.dataclass(frozen=True)
class Status:
    """What a completed receive reports about the matched message."""

    source: int
    tag: int
    nbytes: int
    sent_at: float
    received_at: float

    @property
    def transit_time(self) -> float:
        """Send-call to matched-receive latency (virtual seconds)."""
        return self.received_at - self.sent_at
