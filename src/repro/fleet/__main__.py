"""Fleet sweep CLI: fan a scenario plan across worker processes.

Usage::

    python -m repro.fleet --seeds 4 --jobs 2 --out merged.json
    python -m repro.fleet --rates 200,400,800 --jobs 4 \\
        --stream-dir spools --out merged.json
    python -m repro.fleet --scenario bursty --factors 0.5,1,2 --quick

One plan per invocation: ``--seeds N`` replicates the scenario across
derived seed substreams, ``--rates``/``--factors`` sweep a grid.  The
merged summary (``--out``) and the merged stream manifest
(``--stream-dir``) are ordered by task key and carry no timestamps or
absolute paths, so the same plan produces byte-identical documents at
any ``--jobs`` — CI runs the sweep twice and ``cmp``\\ s the outputs.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from .merge import merge_load_results, write_document
from .plan import ScenarioGrid, SeedReplication, key_slug, run_plan


def _parse_floats(text: str, *, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise SystemExit(f"error: {flag} expects comma-separated numbers, "
                         f"got {text!r}")
    if not values:
        raise SystemExit(f"error: {flag} names no values")
    return values


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Fan a load-scenario plan across worker processes "
                    "and merge the results deterministically.",
    )
    parser.add_argument("--scenario", default="steady",
                        help="base scenario from the bench load suite "
                             "(steady, bursty, chaos-flaky-tcp; "
                             "default steady)")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="replicate the scenario across N derived "
                             "seed substreams")
    parser.add_argument("--rates", default=None, metavar="R1,R2,...",
                        help="sweep the scenario at these total "
                             "open-loop offered rates")
    parser.add_argument("--factors", default=None, metavar="F1,F2,...",
                        help="sweep the scenario at these load scale "
                             "factors")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process serial)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scenario durations")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the merged summary document here "
                             "(sorted-key JSON)")
    parser.add_argument("--stream-dir", metavar="DIR", default=None,
                        help="spool each task's spans under DIR/<key> "
                             "and write DIR's merged stream manifest")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    shapes = sum(1 for flag in (args.seeds, args.rates, args.factors)
                 if flag is not None)
    if shapes == 0:
        parser.error("choose a plan: --seeds N, --rates ..., "
                     "or --factors ...")
    if args.seeds is not None and shapes > 1:
        parser.error("--seeds cannot combine with --rates/--factors")

    from ..bench.load import scenarios

    suite = scenarios(quick=args.quick)
    base = suite.get(args.scenario)
    if base is None:
        parser.error(f"unknown scenario {args.scenario!r}; choose from "
                     f"{', '.join(suite)}")

    if args.seeds is not None:
        if args.seeds < 1:
            parser.error("--seeds must be >= 1")
        plan = SeedReplication(name=args.scenario, base=base,
                               replicas=args.seeds,
                               stream_root=args.stream_dir)
    else:
        plan = ScenarioGrid(
            name=args.scenario, base=base,
            rates=(_parse_floats(args.rates, flag="--rates")
                   if args.rates else ()),
            factors=(_parse_floats(args.factors, flag="--factors")
                     if args.factors else ()),
            stream_root=args.stream_dir)

    run = run_plan(plan, jobs=args.jobs)
    failures = [outcome.error for outcome in run.outcomes.values()
                if outcome.error is not None]
    if failures:
        for error in failures:
            print(f"error: {error}", file=sys.stderr)
            print(error.remote_traceback, file=sys.stderr)
        return 1

    merged = merge_load_results(run.outcomes, plan=args.scenario)
    for key, summary in _t.cast(dict, merged["tasks"]).items():
        p99 = summary["p99_us"]
        print(f"{key}: offered {summary['offered']} delivered "
              f"{summary['delivered']} p99 "
              f"{'n/a' if p99 is None else f'{p99:.0f} us'} "
              f"retries {summary['retries']}")
    totals = _t.cast(dict, merged["totals"])
    print(f"total: {totals['tasks']} tasks, {totals['delivered']}/"
          f"{totals['offered']} delivered, {totals['sim_events']} sim "
          f"events [{run.wall_s:.1f}s wall, jobs={run.jobs}]")

    if args.stream_dir is not None:
        from ..obs.stream import merge_spool_manifests, \
            write_merged_manifest

        spools = {key: key_slug(key) for key in run.outcomes}
        manifest = merge_spool_manifests(args.stream_dir, spools)
        path = write_merged_manifest(args.stream_dir, manifest)
        print(f"stream: {manifest['task_count']} spools, "
              f"{manifest['shard_count']} shards -> {path}")
    if args.out is not None:
        write_document(args.out, merged)
        print(f"summary: {totals['tasks']} tasks -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
