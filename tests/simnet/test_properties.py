"""Property-based tests for the discrete-event engine (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import Simulator, Store
from repro.simnet.resources import Resource

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=40)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(ds):
    """Events must be processed in non-decreasing virtual time, whatever
    the creation order of timeouts."""
    sim = Simulator()
    fired = []

    def watcher(t):
        def body():
            yield sim.timeout(t)
            fired.append(sim.now)
        return body

    for d in ds:
        sim.process(watcher(d)())
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)
    assert sim.now == max(ds)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_equal_time_events_fifo(ds):
    """Among events scheduled for the same instant, creation order wins —
    the engine must behave like a stable priority queue."""
    sim = Simulator()
    order = []

    def body(index, delay):
        yield sim.timeout(delay)
        order.append((sim.now, index))

    for index, d in enumerate(ds):
        sim.process(body(index, d))
    sim.run()
    # Expected: stable sort of (delay, creation index).
    expected = [(t, i) for t, i in
                sorted(((d, i) for i, d in enumerate(ds)))]
    assert order == expected


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_and_conserves_items(items):
    """Whatever is put into an unbounded Store comes out once, in order."""
    sim = Simulator()
    store = Store(sim)
    out = []

    def producer():
        for item in items:
            store.put(item)
            yield sim.timeout(0.001)

    def consumer():
        for _ in items:
            value = yield store.get()
            out.append(value)

    sim.process(producer())
    done = sim.process(consumer())
    sim.run(until=done)
    assert out == items
    assert store.is_empty


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                          st.floats(min_value=0.001, max_value=1.0)),
                min_size=1, max_size=30),
       st.integers(min_value=3, max_value=5))
@settings(max_examples=40, deadline=None)
def test_resource_never_oversubscribed(requests, capacity):
    """At no instant may granted units exceed capacity, and every request
    must eventually be granted (no lost wakeups)."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    granted = []
    max_in_use = 0

    def user(amount, hold):
        nonlocal max_in_use
        yield resource.request(amount)
        max_in_use = max(max_in_use, resource.in_use)
        assert resource.in_use <= capacity
        yield sim.timeout(hold)
        resource.release(amount)
        granted.append(amount)

    for amount, hold in requests:
        sim.process(user(amount, hold))
    sim.run()
    assert len(granted) == len(requests)
    assert resource.in_use == 0
    assert max_in_use <= capacity


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2,
                max_size=20))
@settings(max_examples=50, deadline=None)
def test_all_of_fires_at_max_any_of_at_min(ds):
    sim = Simulator()
    timeouts = [sim.timeout(d) for d in ds]
    times = {}

    def wait_all():
        yield sim.all_of(timeouts)
        times["all"] = sim.now

    def wait_any():
        yield sim.any_of(list(timeouts))
        times["any"] = sim.now

    sim.process(wait_all())
    sim.process(wait_any())
    sim.run()
    assert times["all"] == max(ds)
    assert times["any"] == min(ds)
