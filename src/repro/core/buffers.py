"""Typed message buffers (the data argument of a remote service request).

An RSR "is applied to a startpoint by providing a procedure name and a
data buffer".  :class:`Buffer` is that data buffer: a typed, FIFO
pack/unpack container in the spirit of Nexus's XDR-style marshalling.
Elements are appended with ``put_*`` and extracted in the same order with
``get_*``; a type mismatch raises immediately rather than mis-decoding.

Wire size accounting matters here: every element contributes its
serialised size to :attr:`Buffer.nbytes`, which the transports use for
timing.  NumPy arrays are carried by reference (the simulation shares one
address space) but sized at ``arr.nbytes``; a defensive copy is made at
pack time so in-flight data cannot be mutated by the sender — the
semantics a real marshalling layer provides.

Startpoints can be packed too (``put_startpoint``): this is the paper's
central mobility mechanism — the serialised form carries the endpoint
addresses *and* the communication descriptor table, so the receiver of
the buffer learns how to talk to the referenced endpoints.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .errors import BufferError_

if _t.TYPE_CHECKING:  # pragma: no cover
    from .context import Context
    from .startpoint import Startpoint, WireStartpoint

#: element type tags
_INT = "int"
_FLOAT = "float"
_STR = "str"
_BYTES = "bytes"
_ARRAY = "array"
_STARTPOINT = "startpoint"
_PADDING = "padding"


class Buffer:
    """A typed FIFO pack/unpack buffer with wire-size accounting."""

    __slots__ = ("_items", "_cursor", "_nbytes")

    def __init__(self) -> None:
        self._items: list[tuple[str, object, int]] = []
        self._cursor = 0
        self._nbytes = 0

    # -- introspection ---------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total serialised size of all packed elements, in bytes."""
        return self._nbytes

    @property
    def remaining(self) -> int:
        """Number of elements not yet extracted."""
        return len(self._items) - self._cursor

    def __len__(self) -> int:
        return len(self._items)

    def element_types(self) -> list[str]:
        """The type tags of all elements, in pack order."""
        return [tag for tag, _value, _size in self._items]

    # -- packing ------------------------------------------------------------

    def _put(self, tag: str, value: object, size: int) -> "Buffer":
        self._items.append((tag, value, size))
        self._nbytes += size
        return self

    def put_int(self, value: int) -> "Buffer":
        """Pack a 64-bit integer."""
        return self._put(_INT, int(value), 8)

    def put_float(self, value: float) -> "Buffer":
        """Pack a 64-bit float."""
        return self._put(_FLOAT, float(value), 8)

    def put_str(self, value: str) -> "Buffer":
        """Pack a length-prefixed UTF-8 string."""
        data = value.encode("utf-8")
        return self._put(_STR, value, 4 + len(data))

    def put_bytes(self, value: bytes) -> "Buffer":
        """Pack a length-prefixed byte string."""
        return self._put(_BYTES, bytes(value), 4 + len(value))

    def put_array(self, value: np.ndarray) -> "Buffer":
        """Pack a NumPy array (copied; sized at ``value.nbytes + 16``)."""
        arr = np.array(value, copy=True)
        return self._put(_ARRAY, arr, 16 + arr.nbytes)

    def put_padding(self, nbytes: int) -> "Buffer":
        """Pack ``nbytes`` of payload *by size only* (no stored bytes).

        Benchmarks use this to sweep message sizes without allocating and
        copying megabytes of real data; the wire accounting is identical
        to :meth:`put_bytes`.
        """
        if nbytes < 0:
            raise BufferError_(f"negative padding size {nbytes!r}")
        return self._put(_PADDING, nbytes, nbytes)

    def get_padding(self) -> int:
        """Extract a padding element; returns its size in bytes."""
        return _t.cast(int, self._get(_PADDING))

    def put_startpoint(self, startpoint: "Startpoint", *,
                       lightweight: bool = False) -> "Buffer":
        """Pack a startpoint (serialising its descriptor table).

        With ``lightweight=True`` the descriptor table is omitted (the
        paper's size optimisation for tightly coupled systems); the
        receiver must already know a default table.
        """
        wire = startpoint.to_wire(lightweight=lightweight)
        return self._put(_STARTPOINT, wire, wire.wire_size)

    # -- unpacking -----------------------------------------------------------

    def _get(self, expected: str) -> object:
        if self._cursor >= len(self._items):
            raise BufferError_(f"buffer exhausted while reading {expected!r}")
        tag, value, _size = self._items[self._cursor]
        if tag != expected:
            raise BufferError_(
                f"buffer type mismatch: expected {expected!r}, found {tag!r} "
                f"at element {self._cursor}"
            )
        self._cursor += 1
        return value

    def get_int(self) -> int:
        return _t.cast(int, self._get(_INT))

    def get_float(self) -> float:
        return _t.cast(float, self._get(_FLOAT))

    def get_str(self) -> str:
        return _t.cast(str, self._get(_STR))

    def get_bytes(self) -> bytes:
        return _t.cast(bytes, self._get(_BYTES))

    def get_array(self) -> np.ndarray:
        return _t.cast(np.ndarray, self._get(_ARRAY))

    def get_startpoint(self, context: "Context") -> "Startpoint":
        """Unpack a startpoint *into* ``context``.

        Importing runs the receiving side of the mobility protocol: the
        context builds a fresh startpoint whose links mirror the original
        and whose communication method will be selected (automatically or
        per the context's policy) on first use.
        """
        wire = _t.cast("WireStartpoint", self._get(_STARTPOINT))
        return context.import_startpoint(wire)

    def peek_type(self) -> str | None:
        """The type tag of the next element, or ``None`` at end."""
        if self._cursor >= len(self._items):
            return None
        return self._items[self._cursor][0]

    def rewind(self) -> None:
        """Reset the read cursor (used when one buffer fans out)."""
        self._cursor = 0

    def reader_copy(self) -> "Buffer":
        """A read-view sharing packed data but with an independent cursor.

        Multicast delivers one payload to many endpoints; each handler
        gets its own reader so extraction positions do not interfere.
        """
        clone = Buffer.__new__(Buffer)
        clone._items = self._items
        clone._cursor = 0
        clone._nbytes = self._nbytes
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Buffer elements={len(self._items)} cursor={self._cursor} "
                f"nbytes={self._nbytes}>")
