"""Communication-method selection policies (Section 3.2).

"Nexus currently uses a simple automatic selection rule: a received
descriptor table is scanned in order and the first 'applicable'
communication method is used."  :class:`FirstApplicable` is that rule;
because descriptor tables are built fastest-first, it realises the
fastest-first policy.  The other policies implement the paper's manual
and QoS-aware variants: the user "can also influence the choice of method
by reordering entries within the communication descriptor table or by
adding or deleting descriptors", and "network QoS parameters [can] be
incorporated into the selection policy, by looking at available network
bandwidth rather than raw bandwidth".
"""

from __future__ import annotations

import abc
import typing as _t

from ..simnet.link import LinkProfile
from ..transports.base import Descriptor, Transport
from ..transports.ipbase import IpTransport
from .descriptor_table import CommDescriptorTable
from .errors import SelectionError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..simnet.node import Host
    from .context import Context


def method_profile(transport: Transport, local: "Host",
                   remote: "Host") -> LinkProfile:
    """The effective wire profile a method would use between two hosts."""
    if isinstance(transport, IpTransport):
        return transport.profile_between(local, remote)
    costs = transport.costs
    return LinkProfile(name=transport.name, latency=costs.latency,
                       bandwidth=costs.bandwidth)


class SelectionPolicy(abc.ABC):
    """Chooses a communication method for one link of a startpoint."""

    @abc.abstractmethod
    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        """Return the chosen descriptor, or raise :class:`SelectionError`."""

    def _applicable(self, context: "Context", descriptor: Descriptor,
                    remote_host: "Host") -> bool:
        """Is this entry usable?  (method enabled locally + module check)."""
        registry = context.nexus.transports
        if descriptor.method not in registry:
            return False
        transport = registry.get(descriptor.method)
        return transport.applicable(context, descriptor, remote_host)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FirstApplicable(SelectionPolicy):
    """The paper's automatic rule: first applicable entry in table order."""

    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        for descriptor in table:
            if self._applicable(context, descriptor, remote_host):
                return descriptor
        raise SelectionError(
            f"no applicable method in table {table.methods} from context "
            f"{context.id} to host {remote_host.name!r}"
        )


class PreferMethod(SelectionPolicy):
    """Manual preference with automatic fallback.

    Tries ``method`` first; if it is absent or not applicable, falls back
    to the wrapped policy (default :class:`FirstApplicable`).
    """

    def __init__(self, method: str,
                 fallback: SelectionPolicy | None = None):
        self.method = method
        self.fallback = fallback or FirstApplicable()

    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        if self.method in table:
            descriptor = table.entry(self.method)
            if self._applicable(context, descriptor, remote_host):
                return descriptor
        return self.fallback.select(context, table, remote_host)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreferMethod({self.method!r}, fallback={self.fallback!r})"


class RequireMethod(SelectionPolicy):
    """Strict manual selection: the named method or an error."""

    def __init__(self, method: str):
        self.method = method

    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        if self.method not in table:
            raise SelectionError(
                f"required method {self.method!r} not in table {table.methods}"
            )
        descriptor = table.entry(self.method)
        if not self._applicable(context, descriptor, remote_host):
            raise SelectionError(
                f"required method {self.method!r} is not applicable from "
                f"context {context.id} to host {remote_host.name!r}"
            )
        return descriptor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RequireMethod({self.method!r})"


class SiteSecurityPolicy(SelectionPolicy):
    """The paper's security example, as a selection policy.

    "Control information might be encrypted outside a site, but not
    within": when the two hosts' ``site`` attributes differ, require the
    secure method; within one site, run the normal automatic rule but
    never pick the secure method (no reason to pay the crypto tax).

    Attach this policy to *control* startpoints only; data startpoints
    keep the plain policy — method choice by *what* is communicated.
    """

    def __init__(self, secure_method: str = "stcp",
                 site_attribute: str = "site"):
        self.secure_method = secure_method
        self.site_attribute = site_attribute

    def _site(self, host: "Host") -> object:
        return host.attributes.get(self.site_attribute)

    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        local_site = self._site(context.host)
        remote_site = self._site(remote_host)
        crossing = (local_site is None or remote_site is None
                    or local_site != remote_site)
        if crossing:
            if self.secure_method not in table:
                raise SelectionError(
                    f"cross-site link requires {self.secure_method!r} but "
                    f"the table only offers {table.methods}"
                )
            descriptor = table.entry(self.secure_method)
            if not self._applicable(context, descriptor, remote_host):
                raise SelectionError(
                    f"cross-site link requires {self.secure_method!r} "
                    "but it is not applicable here"
                )
            return descriptor
        for descriptor in table:
            if descriptor.method == self.secure_method:
                continue
            if self._applicable(context, descriptor, remote_host):
                return descriptor
        raise SelectionError(
            f"no applicable non-secure method in {table.methods} within "
            f"site {local_site!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SiteSecurityPolicy(secure_method={self.secure_method!r}, "
                f"site_attribute={self.site_attribute!r})")


class QoSAware(SelectionPolicy):
    """First applicable entry meeting bandwidth/latency requirements.

    ``min_bandwidth`` (bytes/s) and ``max_latency`` (s) are checked
    against the *effective* profile between the two hosts (which for WAN
    routes reflects the bottleneck link, i.e. available rather than raw
    local bandwidth).  If nothing qualifies, behaviour depends on
    ``strict``: raise, or fall back to plain first-applicable.
    """

    def __init__(self, min_bandwidth: float = 0.0,
                 max_latency: float = float("inf"), strict: bool = False,
                 use_available: bool = False):
        self.min_bandwidth = min_bandwidth
        self.max_latency = max_latency
        self.strict = strict
        #: Check *available* (unreserved) rather than raw bandwidth —
        #: the paper's §3.2 refinement.
        self.use_available = use_available

    def _bandwidth(self, context: "Context", transport: Transport,
                   remote_host: "Host", profile: LinkProfile) -> float:
        if not self.use_available:
            return profile.bandwidth
        available = context.nexus.network.available_bandwidth(
            context.host, remote_host, getattr(transport, "wire_method",
                                               transport.name))
        if available is None:
            return profile.bandwidth
        return min(profile.bandwidth, available)

    def select(self, context: "Context", table: CommDescriptorTable,
               remote_host: "Host") -> Descriptor:
        registry = context.nexus.transports
        for descriptor in table:
            if not self._applicable(context, descriptor, remote_host):
                continue
            transport = registry.get(descriptor.method)
            profile = method_profile(transport, context.host, remote_host)
            bandwidth = self._bandwidth(context, transport, remote_host,
                                        profile)
            if (bandwidth >= self.min_bandwidth
                    and profile.latency <= self.max_latency):
                return descriptor
        if self.strict:
            raise SelectionError(
                f"no method in {table.methods} meets QoS "
                f"(min_bw={self.min_bandwidth}, max_lat={self.max_latency})"
            )
        return FirstApplicable().select(context, table, remote_host)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QoSAware(min_bandwidth={self.min_bandwidth}, "
                f"max_latency={self.max_latency}, strict={self.strict})")
