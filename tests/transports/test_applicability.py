"""Tests for per-module applicability rules (Section 3.2's method-specific
criteria) and descriptor export."""

import pytest

from repro.testbeds import make_iway, make_sp2


@pytest.fixture
def bed():
    return make_sp2(nodes_a=2, nodes_b=1,
                    transports=("local", "shm", "mpl", "tcp", "udp"))


def ctx_pair(bed, host_a, host_b, methods=None):
    nexus = bed.nexus
    return (nexus.context(host_a, methods=methods),
            nexus.context(host_b, methods=methods))


def applicable(nexus, name, local, remote):
    transport = nexus.transports.get(name)
    descriptor = transport.export_descriptor(remote)
    if descriptor is None:
        return False
    return transport.applicable(local, descriptor, remote.host)


class TestLocal:
    def test_only_same_context(self, bed):
        a, b = ctx_pair(bed, bed.hosts_a[0], bed.hosts_a[1])
        assert applicable(bed.nexus, "local", a, a)
        assert not applicable(bed.nexus, "local", a, b)


class TestShm:
    def test_same_host_different_context(self, bed):
        nexus = bed.nexus
        a1 = nexus.context(bed.hosts_a[0])
        a2 = nexus.context(bed.hosts_a[0])
        b = nexus.context(bed.hosts_a[1])
        assert applicable(nexus, "shm", a1, a2)
        assert not applicable(nexus, "shm", a1, b)

    def test_not_applicable_to_self(self, bed):
        ctx = bed.nexus.context(bed.hosts_a[0])
        assert not applicable(bed.nexus, "shm", ctx, ctx)


class TestMpl:
    def test_same_partition_only(self, bed):
        a, a2 = ctx_pair(bed, bed.hosts_a[0], bed.hosts_a[1])
        b = bed.nexus.context(bed.hosts_b[0])
        assert applicable(bed.nexus, "mpl", a, a2)
        assert not applicable(bed.nexus, "mpl", a, b)

    def test_descriptor_carries_node_and_session(self, bed):
        ctx = bed.nexus.context(bed.hosts_a[0])
        descriptor = bed.nexus.transports.get("mpl").export_descriptor(ctx)
        assert descriptor.param("node") == ctx.host.id
        assert descriptor.param("session") == bed.partition_a.session

    def test_no_descriptor_outside_partition(self, bed):
        machine = bed.machine
        loose = machine.new_host("loose")
        ctx = bed.nexus.context(loose, methods=("local", "tcp"))
        assert bed.nexus.transports.get("mpl").export_descriptor(ctx) is None


class TestTcp:
    def test_applicable_across_partitions(self, bed):
        a = bed.nexus.context(bed.hosts_a[0])
        b = bed.nexus.context(bed.hosts_b[0])
        assert applicable(bed.nexus, "tcp", a, b)
        assert applicable(bed.nexus, "tcp", b, a)

    def test_not_applicable_without_route(self):
        iway_bed = make_iway()
        nexus = iway_bed.nexus
        # Temporarily build a disconnected machine.
        island = nexus.network.new_machine("island")
        island_host = island.new_host()
        a = nexus.context(iway_bed.sp2_hosts[0])
        b = nexus.context(island_host, methods=("local", "tcp"))
        assert not applicable(nexus, "tcp", a, b)


class TestMyrinetAal5:
    def test_myrinet_needs_attribute_on_both(self):
        bed = make_sp2(nodes_a=2, nodes_b=0,
                       transports=("local", "myrinet", "tcp"))
        bed.hosts_a[0].attributes["myrinet"] = True
        a = bed.nexus.context(bed.hosts_a[0])
        b = bed.nexus.context(bed.hosts_a[1])
        # b's host lacks the interface: no descriptor at all.
        assert bed.nexus.transports.get("myrinet").export_descriptor(b) is None
        bed.hosts_a[1].attributes["myrinet"] = True
        b2 = bed.nexus.context(bed.hosts_a[1])
        assert applicable(bed.nexus, "myrinet", a, b2)

    def test_aal5_on_iway(self):
        bed = make_iway()
        nexus = bed.nexus
        sp2_ctx = nexus.context(bed.sp2_hosts[0])
        cave_ctx = nexus.context(bed.cave_host)
        daq_ctx = nexus.context(bed.instrument_host,
                                methods=("local", "tcp", "udp"))
        assert applicable(nexus, "aal5", sp2_ctx, cave_ctx)
        # The instrument host has no ATM interface.
        assert nexus.transports.get("aal5").export_descriptor(daq_ctx) is None
        # But TCP reaches it through the routed path.
        assert applicable(nexus, "tcp", sp2_ctx, daq_ctx)
