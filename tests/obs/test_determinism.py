"""Identical runs must produce byte-identical trace exports.

Context ids are process-global, so this only holds because the exporters
renumber them densely by first appearance and every other id comes from
per-run counters.
"""

from repro.obs import export

from .test_spans import run_pingpong


def _artefacts():
    bed = run_pingpong()
    obs, nexus = bed.nexus.obs, bed.nexus
    return (
        export.dumps_chrome_trace(export.to_chrome_trace(obs, nexus)),
        "\n".join(export.spans_jsonl(obs)),
        export.ascii_timeline(obs),
        str(obs.metrics.snapshot()),
    )


def test_repeated_runs_are_byte_identical():
    first = _artefacts()
    second = _artefacts()
    assert first == second


def test_merged_trace_is_deterministic():
    bed_a, bed_b = run_pingpong(), run_pingpong()
    runs = [(bed_a.nexus.obs, bed_a.nexus), (bed_b.nexus.obs, bed_b.nexus)]
    first = export.dumps_chrome_trace(export.merged_chrome_trace(runs))

    bed_c, bed_d = run_pingpong(), run_pingpong()
    runs = [(bed_c.nexus.obs, bed_c.nexus), (bed_d.nexus.obs, bed_d.nexus)]
    second = export.dumps_chrome_trace(export.merged_chrome_trace(runs))
    assert first == second


def test_collecting_scope_gathers_runtimes():
    import repro.obs as obs_mod

    with obs_mod.collecting() as runs:
        bed = run_pingpong(observe=None)
    assert len(runs) == 1
    assert runs[0][0] is bed.nexus.obs
    assert bed.nexus.obs.enabled
    # The default is restored on exit.
    assert not obs_mod.default_observe()
