"""The analysis tier: windowed telemetry, comm-graph, and critical paths.

Two deterministic load runs feed the three ``repro.obs`` analysis
surfaces:

* **Chaos run** — the steady remote-RPC workload with a flaky
  inter-partition TCP window in the middle, and UDP available as the
  failover method.  The aggregate SLO passes (multimethod failover
  rides out the window) while the *windowed* verdict records the
  in-window p99 violations the aggregate averages away, plus the
  sim-time from fault clearing back to an in-budget window — the
  recovery-time metric.
* **Forwarding run** — remote traffic relayed through the §4.3
  forwarding processor, giving the communication graph a genuine
  multi-hop topology and the critical paths a forward hop to attribute.

Everything is a pure function of the scenario seeds; with
``EXPORT_DIR`` set (the ``--export-dir`` CLI flag) the artefact writes
``timeline.json``, ``graph.json``, ``graph.dot``, and ``critpath.json``
— byte-identical across repeated runs, which the CI analysis-smoke job
asserts with ``cmp``.
"""

from __future__ import annotations

import dataclasses
import os
import typing as _t

from .. import obs as _obs
from ..load import (
    FixedSize,
    FleetSpec,
    LoadResult,
    LoadScenario,
    OpenLoop,
    SLO,
    SLOVerdict,
    evaluate,
    run_scenario,
)
from ..obs.critpath import (
    CriticalPath,
    extract_critical_paths,
    phase_attribution,
    write_critpaths,
)
from ..obs.graph import (
    CommGraph,
    evaluate_partition,
    extract_graph,
    write_dot,
    write_graph,
)
from ..obs.stream import StreamConfig, fold_stream
from ..obs.timeline import write_timeline
from ..place.plan import forwarding_placement
from ..simnet.faults import FaultPlan
from ..util.records import ResultTable
from ..util.report import critical_path_report

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..testbeds import SP2Testbed

#: When set (``--export-dir``), the artefact writes its four analysis
#: documents here.  Module-level because artefact drivers share one
#: ``(quick, record)`` signature.
EXPORT_DIR: str | None = None

#: When set (``--stream-dir``), both analysis runs spool their spans to
#: ``<STREAM_DIR>/chaos`` and ``<STREAM_DIR>/forward`` instead of the
#: in-memory log, and the graph/critpath surfaces are rebuilt by
#: folding the shards.  With ``SAMPLE`` unset the folded documents are
#: byte-identical to the in-memory extraction (the CI stream-smoke job
#: ``cmp``s them); with a sampling policy they are partial by design.
STREAM_DIR: str | None = None
SAMPLE: str | None = None
SAMPLE_SEED: int = 0

#: The flaky window: strong enough to force retries and failovers,
#: cleared well before the offered window ends so recovery is visible.
FAULT_START = 0.10
FAULT_DURATION = 0.08
DROP_PROBABILITY = 0.6

#: Windowed budget (µs).  Steady-state windows sit in the 5 000 µs
#: histogram bucket; fault windows (retry backoff + failover attempts)
#: land in the 10 000 µs bucket, so the budget between the two buckets
#: separates them cleanly at histogram resolution.
WINDOW_P99_US = 7_500.0
WARMUP_WINDOWS = 4

#: How many critical paths the report and export keep.
TOP_PATHS = 5


def _chaos_window(bed: "SP2Testbed") -> FaultPlan:
    return FaultPlan(bed.nexus.network).flaky(
        bed.partition_a, bed.partition_b, transport="tcp",
        start=FAULT_START, duration=FAULT_DURATION,
        drop_probability=DROP_PROBABILITY, seed=11)


def chaos_scenario() -> LoadScenario:
    """Steady remote RPC with a mid-run flaky TCP window and UDP as the
    failover method.  Mode-independent: one short run is cheap enough
    that quick and full CI see the identical, tuned fault arc."""
    return LoadScenario(
        name="analysis-chaos",
        fleets=(FleetSpec("rpc-remote", clients=6,
                          arrival=OpenLoop(rate=60.0),
                          sizes=FixedSize(2048), route="remote",
                          service_ops=10, service_time=200e-6),),
        duration=0.3, timeline_windows=15,
        transports=("local", "mpl", "tcp", "udp"),
        skip_poll=(("tcp", 4),), chaos=_chaos_window)


def forwarding_scenario() -> LoadScenario:
    """Remote traffic through the forwarding processor: the multi-hop
    topology the graph and critical-path extractors are pointed at.
    The explicit placement is the hand-picked §4.3 configuration the
    deprecated ``forwarding=True`` flag used to spell."""
    return LoadScenario(
        name="analysis-forward",
        fleets=(FleetSpec("rpc-forward", clients=4,
                          arrival=OpenLoop(rate=50.0),
                          sizes=FixedSize(1024), route="remote"),),
        duration=0.2, timeline_windows=10,
        remote_servers=3, placement=forwarding_placement(),
        skip_poll=(("tcp", 4),))


def chaos_slo() -> SLO:
    """Aggregate budgets the chaos run must meet outright, plus the
    detection-only windowed budget (``enforce_windows=False``): the
    in-window violations and the recovery time stay visible in the
    :class:`~repro.load.slo.WindowedVerdict` without failing the run."""
    return SLO(name="analysis-chaos",
               p50_latency_us=10_000.0, p99_latency_us=50_000.0,
               min_goodput_fraction=0.7, max_drop_fraction=0.1,
               max_retry_fraction=0.5,
               window_p99_latency_us=WINDOW_P99_US,
               warmup_windows=WARMUP_WINDOWS,
               enforce_windows=False)


def _fault_windows(result: LoadResult) -> tuple[int, ...]:
    """Timeline windows overlapping the run's installed fault arc."""
    timeline = result.timeline
    if timeline is None or not result.fault_log:
        return ()
    start = min(when for when, _action, _detail in result.fault_log)
    stop = max(when for when, _action, _detail in result.fault_log)
    return tuple(
        window for window in range(timeline.window_of(start),
                                   timeline.window_of(stop) + 1)
        if not timeline.window_end(window) <= start)


def _partition_assignment(graph: CommGraph) -> dict[int, str]:
    """Rank → partition label, from the load tier's naming convention."""
    return {node.rank: ("B" if node.component.startswith("srv/remote")
                        else "A")
            for node in graph.node_list()}


@dataclasses.dataclass
class AnalysisBench:
    """Everything the analysis artefact produced."""

    chaos_result: LoadResult
    chaos_verdict: SLOVerdict
    forward_result: LoadResult
    graph: CommGraph
    partition_costs: dict[str, object]
    paths: list[CriticalPath]
    quick: bool

    def windowed_table(self) -> ResultTable:
        windowed = self.chaos_verdict.windowed
        assert windowed is not None
        table = ResultTable(
            "Windowed SLO under chaos (detection-only)",
            ["value"])
        table.add("windows judged",
                  float(windowed.window_hi - windowed.window_lo + 1))
        table.add("violations", float(len(windowed.violations)))
        table.add("empty (n/a)", float(len(windowed.empty_windows)))
        table.add("worst p99 us", windowed.worst_p99_us
                  if windowed.worst_p99_us is not None else float("nan"))
        table.add("fault clear s", windowed.fault_clear_s
                  if windowed.fault_clear_s is not None else float("nan"))
        table.add("recovery ms",
                  windowed.recovery_time_s * 1e3
                  if windowed.recovery_time_s is not None else float("nan"))
        return table

    def graph_table(self) -> ResultTable:
        cross = _t.cast(dict, self.partition_costs["cross"])
        table = ResultTable("Communication graph (forwarding run)",
                            ["value"])
        table.add("nodes", float(len(self.graph.nodes)))
        table.add("edges", float(len(self.graph.edges)))
        table.add("messages", float(self.graph.total_messages))
        table.add("bytes", float(self.graph.total_bytes))
        table.add("cross-cut bytes", float(_t.cast(int, cross["bytes"])))
        table.add("cut fraction (bytes)",
                  _t.cast(float, self.partition_costs[
                      "cut_fraction_bytes"]))
        return table

    def render(self) -> str:
        sections = [self.windowed_table().render(2),
                    self.graph_table().render(4),
                    critical_path_report(self.paths, top_n=TOP_PATHS)]
        return "\n\n".join(sections)


def _stream_config(sub: str) -> StreamConfig | None:
    if STREAM_DIR is None:
        return None
    return StreamConfig(directory=os.path.join(STREAM_DIR, sub),
                        policy=SAMPLE, seed=SAMPLE_SEED)


def analysis_bench(quick: bool = False) -> AnalysisBench:
    """Run the whole analysis artefact; exports when EXPORT_DIR is set."""
    chaos = chaos_scenario()
    chaos_stream = _stream_config("chaos")
    with _obs.collecting():
        chaos_result = run_scenario(chaos, stream=chaos_stream)
    chaos_verdict = evaluate(chaos_result, chaos_slo())

    forward = forwarding_scenario()
    forward_stream = _stream_config("forward")
    with _obs.collecting() as runs:
        forward_result = run_scenario(forward, stream=forward_stream)
    forward_obs, forward_nexus = runs[-1]
    if forward_stream is not None:
        # Streaming leaves the in-memory span log empty: rebuild the
        # graph and critical paths by folding the spooled shards.
        fold = fold_stream(forward_stream.directory, top_k=TOP_PATHS)
        graph = fold.graph
        paths = fold.paths
    else:
        graph = extract_graph(forward_obs, nexus=forward_nexus)
        paths = extract_critical_paths(forward_obs, top_k=TOP_PATHS)
    partition_costs = evaluate_partition(graph,
                                         _partition_assignment(graph))

    if EXPORT_DIR is not None:
        os.makedirs(EXPORT_DIR, exist_ok=True)
        timeline = chaos_result.timeline
        if chaos_stream is not None:
            # Prefer the folded timeline (byte-identical replay when
            # unsampled) so the export exercises the streamed path end
            # to end; a sampled spool cannot replay, so fall back to
            # the live timeline.
            folded_timeline = fold_stream(chaos_stream.directory).timeline
            if folded_timeline is not None:
                timeline = folded_timeline
        assert timeline is not None
        write_timeline(os.path.join(EXPORT_DIR, "timeline.json"), timeline,
                       meta={"scenario": chaos.name, "seed": chaos.seed,
                             "fault_log": [list(entry) for entry
                                           in chaos_result.fault_log]})
        write_graph(os.path.join(EXPORT_DIR, "graph.json"), graph,
                    meta={"scenario": forward.name, "seed": forward.seed})
        write_dot(os.path.join(EXPORT_DIR, "graph.dot"), graph,
                  title=forward.name)
        write_critpaths(os.path.join(EXPORT_DIR, "critpath.json"), paths,
                        meta={"scenario": forward.name,
                              "seed": forward.seed})

    return AnalysisBench(chaos_result=chaos_result,
                         chaos_verdict=chaos_verdict,
                         forward_result=forward_result,
                         graph=graph, partition_costs=partition_costs,
                         paths=paths, quick=quick)


def check_analysis_shape(bench: AnalysisBench) -> None:
    """Assert the qualitative analysis-tier findings.

    1. The chaos run passes its aggregate SLO — failover to UDP rides
       out the flaky TCP window.
    2. The windowed verdict still detects the outage: every violation
       budget's worth of in-fault windows shows up, so the transient the
       aggregate averaged away is on record.
    3. The recovery time is measured and positive: the run got back
       inside the windowed budget after the fault cleared.
    4. The forwarding run's communication graph has the relay topology
       (forward hops on the critical path, cross-partition traffic on
       the cut).
    """
    verdict = bench.chaos_verdict
    windowed = verdict.windowed
    assert windowed is not None, "chaos run recorded no windowed verdict"
    assert verdict.passed, (
        "chaos aggregate SLO should pass (failover rides out the "
        "window):\n" + verdict.summary())
    assert windowed.violations, (
        "windowed verdict should detect in-outage violations the "
        "aggregate misses:\n" + windowed.summary())
    in_fault = set(_fault_windows(bench.chaos_result))
    assert in_fault & set(windowed.violations), (
        f"violations {windowed.violations} never overlap the fault "
        f"windows {sorted(in_fault)}")
    assert bench.chaos_result.failovers > 0, (
        "the flaky TCP window should force method failovers")
    assert windowed.recovery_time_s is not None \
        and windowed.recovery_time_s > 0, (
            f"recovery time should be measured and positive, got "
            f"{windowed.recovery_time_s!r}")

    assert any(path.wire_hops >= 2 for path in bench.paths), (
        "forwarding critical paths should contain a multi-hop chain")
    assert "forward" in phase_attribution(bench.paths), (
        "critical paths should attribute time to the forward phase")
    cross = _t.cast(dict, bench.partition_costs["cross"])
    assert _t.cast(int, cross["messages"]) > 0, (
        "forwarding run should put traffic on the partition cut")


__all__ = [
    "AnalysisBench",
    "TOP_PATHS",
    "WINDOW_P99_US",
    "analysis_bench",
    "chaos_scenario",
    "chaos_slo",
    "check_analysis_shape",
    "forwarding_scenario",
]
