"""repro.fm — Fortran M-style typed channels over communication links.

Fortran M (Foster & Chandy, reference [14]) was one of the parallel
languages implemented on Nexus: processes communicate through
single-reader *channels*, referenced by *inports* and *outports*, with
outports first-class values that can travel in messages.  The mapping
onto the paper's abstractions is exact and is why this layer is tiny:

* an inport is an endpoint plus a FIFO of arrived values;
* an outport is a startpoint — mobile, multimethod, re-selected
  wherever it lands;
* an FM *merger* (many writers, one reader) is precisely the paper's
  "if more than one startpoint is bound to an endpoint, incoming
  communications are merged".

Channels carry typed payloads (the MPI payload encoding) and ports
themselves; writers announce themselves (fork) and retire (close), and
a read on a fully closed, drained channel raises
:class:`ChannelClosed` — FM's end-of-channel condition.
"""

from .channels import (
    ChannelClosed,
    FmError,
    InPort,
    OutPort,
    channel,
)

__all__ = [
    "ChannelClosed",
    "FmError",
    "InPort",
    "OutPort",
    "channel",
]
