"""Terminal line charts for the regenerated figures.

The paper's Figures 4 and 6 are line plots; :func:`render_chart` draws
the same series as an ASCII chart so the benchmark harness can show the
*shape* (crossovers, knees, convergence) directly in a terminal or a
text log, next to the exact numbers.

Deliberately simple: linear or logarithmic axes, one glyph per series,
nearest-cell rasterisation.  Not a plotting library — a lab notebook.
"""

from __future__ import annotations

import math
import typing as _t

from .records import Series

#: Default glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"

#: Sparkline intensity ramp, lowest to highest.
SPARK_RAMP = ".:-=+*#%@"


def sparkline(values: _t.Sequence[float | None], *,
              lo: float | None = None, hi: float | None = None) -> str:
    """One-line intensity strip for a windowed series.

    ``None`` entries (windows with no samples — n/a, not zero) render
    as a blank cell, so a gap in the signal stays visually distinct
    from a measured low.  ``lo``/``hi`` pin the scale (defaults: the
    measured extremes); a flat series renders at the bottom of the
    ramp.
    """
    measured = [value for value in values if value is not None]
    if not measured:
        return " " * len(values)
    floor = min(measured) if lo is None else lo
    ceiling = max(measured) if hi is None else hi
    span = ceiling - floor
    cells: list[str] = []
    for value in values:
        if value is None:
            cells.append(" ")
            continue
        if span <= 0:
            cells.append(SPARK_RAMP[0])
            continue
        position = (value - floor) / span
        index = min(int(position * len(SPARK_RAMP)), len(SPARK_RAMP) - 1)
        cells.append(SPARK_RAMP[max(index, 0)])
    return "".join(cells)


def _scale(value: float, lo: float, hi: float, cells: int,
           log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(int(position * (cells - 1) + 0.5), cells - 1)


def render_chart(series_list: _t.Sequence[Series], *, title: str = "",
                 width: int = 64, height: int = 16,
                 log_x: bool = False, log_y: bool = False) -> str:
    """Render series as an ASCII chart with axes and a legend."""
    if not series_list:
        raise ValueError("nothing to plot")
    points = [(x, y) for s in series_list for x, y in s.points]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x and min(xs) <= 0:
        raise ValueError("log_x requires positive x values")
    if log_y and min(ys) <= 0:
        raise ValueError("log_y requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        glyph = GLYPHS[index % len(GLYPHS)]
        ordered = sorted(series.points)
        cells = [(_scale(x, x_lo, x_hi, width, log_x),
                  _scale(y, y_lo, y_hi, height, log_y))
                 for x, y in ordered]
        # connect consecutive points with interpolated cells
        for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for step in range(steps + 1):
                col = round(c0 + (c1 - c0) * step / steps)
                row = round(r0 + (r1 - r0) * step / steps)
                grid[height - 1 - row][col] = glyph
        for col, row in cells:  # data points win over line cells
            grid[height - 1 - row][col] = glyph

    def fmt(value: float) -> str:
        return f"{value:.4g}"

    y_labels = [fmt(y_hi), fmt((y_lo + y_hi) / 2), fmt(y_lo)]
    label_width = max(len(label) for label in y_labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_labels[0]
        elif row_index == height // 2:
            label = y_labels[1]
        elif row_index == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis_note = " (log)" if log_x else ""
    lines.append(f"{'':>{label_width}}  {fmt(x_lo)}"
                 + f"{fmt(x_hi):>{width - len(fmt(x_lo))}}" + x_axis_note)
    legend = "   ".join(f"{GLYPHS[i % len(GLYPHS)]} {s.name}"
                        for i, s in enumerate(series_list))
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
