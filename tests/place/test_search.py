"""Placement search: enumeration, hill-climb, validated top-k."""

import types

import pytest

from repro.load import SLO, FixedSize, FleetSpec, LoadScenario, OpenLoop
from repro.place import (
    PlacementError,
    candidate_placements,
    direct_placement,
    forwarding_placement,
    neighborhood_search,
    ordering_agreement,
    search_placements,
)
from repro.place.search import ValidatedCandidate

from .graphs import serving_graph


def scenario():
    return LoadScenario(
        name="search-test",
        fleets=(FleetSpec("rpc", clients=4, arrival=OpenLoop(rate=30.0),
                          sizes=FixedSize(1024), route="remote",
                          service_ops=10, service_time=200e-6),),
        duration=0.1, remote_servers=3)


def slo():
    return SLO(name="capacity", p99_latency_us=50_000.0,
               min_goodput_fraction=0.9)


def fake_validated(label, static_capacity, capacity):
    return ValidatedCandidate(
        label=label, placement=direct_placement(),
        static=types.SimpleNamespace(static_capacity=static_capacity),
        result=types.SimpleNamespace(capacity=capacity))


class TestCandidateEnumeration:
    def test_every_route_enumerated_best_first(self):
        graph = serving_graph(shares=(6, 3, 1))
        candidates = candidate_placements(graph, scenario())
        assert [c.label for c in candidates][0] == "forward@2"
        assert {c.label for c in candidates} \
            == {"direct", "forward@0", "forward@1", "forward@2"}
        capacities = [c.static.static_capacity for c in candidates]
        assert capacities == sorted(capacities, reverse=True)

    def test_assignment_rides_along_for_provenance(self):
        graph = serving_graph()
        candidates = candidate_placements(
            graph, scenario(), assignment={0: "P0", 1: "P1"})
        for candidate in candidates:
            assert candidate.placement.assignment \
                == ((0, "P0"), (1, "P1"))

    def test_method_defaults_to_the_slow_transport(self):
        graph = serving_graph()
        candidates = candidate_placements(graph, scenario())
        assert all(c.placement.method == "tcp" for c in candidates)


class TestNeighborhoodSearch:
    def test_hill_climb_reaches_the_enumeration_optimum(self):
        graph = serving_graph(shares=(6, 3, 1))
        base = scenario()
        best_static = candidate_placements(graph, base)[0]
        for start in (direct_placement(),
                      forwarding_placement(forwarder=0)):
            reached = neighborhood_search(graph, base, start)
            assert reached.label == best_static.label

    def test_local_optimum_returns_itself(self):
        graph = serving_graph(shares=(6, 3, 1))
        base = scenario()
        optimum = candidate_placements(graph, base)[0].placement
        assert neighborhood_search(graph, base, optimum).placement \
            == optimum


class TestOrderingAgreement:
    def test_perfect_concordance(self):
        validated = [fake_validated("a", 300.0, 3000.0),
                     fake_validated("b", 200.0, 2000.0),
                     fake_validated("c", 100.0, 1000.0)]
        assert ordering_agreement(validated) == 1.0

    def test_inversions_lower_the_score(self):
        validated = [fake_validated("a", 300.0, 1000.0),
                     fake_validated("b", 200.0, 2000.0),
                     fake_validated("c", 100.0, 3000.0)]
        assert ordering_agreement(validated) == 0.0

    def test_simulated_ties_count_concordant(self):
        validated = [fake_validated("a", 300.0, 2000.0),
                     fake_validated("b", 200.0, 2000.0)]
        assert ordering_agreement(validated) == 1.0

    def test_static_ties_are_skipped(self):
        validated = [fake_validated("a", 200.0, 1000.0),
                     fake_validated("b", 200.0, 9000.0)]
        assert ordering_agreement(validated) == 1.0


class TestSearchPlacements:
    def test_serial_search_validates_and_picks_a_winner(self):
        graph = serving_graph(shares=(6, 3, 1))
        result = search_placements(
            graph, scenario(), slo(), top_k=2,
            low=200.0, high=2000.0, max_probes=2)
        assert len(result.candidates) == 4
        assert len(result.validated) == 2
        assert result.best.label in result.validated_by_label()
        assert result.best.capacity \
            == max(v.capacity for v in result.validated)
        assert "placement search" in result.summary()

    def test_search_is_deterministic(self):
        graph = serving_graph(shares=(6, 3, 1))
        kwargs = dict(top_k=2, low=200.0, high=2000.0, max_probes=2)
        one = search_placements(graph, scenario(), slo(), **kwargs)
        two = search_placements(graph, scenario(), slo(), **kwargs)
        assert one.summary() == two.summary()
        assert [v.result.probes for v in one.validated] \
            == [v.result.probes for v in two.validated]

    def test_nonpositive_top_k_is_a_typed_error(self):
        graph = serving_graph()
        with pytest.raises(PlacementError, match="top_k"):
            search_placements(graph, scenario(), slo(), top_k=0,
                              low=200.0, high=2000.0)
