"""Property-based validation of WAN routing against networkx.

Our engine implements Dijkstra by hand (latency-weighted shortest path
over machines); networkx provides an independent reference.  Random
topologies are generated with hypothesis and both implementations must
agree on reachability and total path latency.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import LinkProfile, Network, Simulator

edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7),
              st.floats(min_value=1e-4, max_value=0.5)),
    min_size=0, max_size=20,
)


def build_both(n_machines, edges):
    """Build our Network and the equivalent networkx graph."""
    sim = Simulator()
    network = Network(sim)
    machines = [network.new_machine(f"m{i}") for i in range(n_machines)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(n_machines))
    for index, (a, b, latency) in enumerate(edges):
        a %= n_machines
        b %= n_machines
        if a == b:
            continue
        profile = LinkProfile(f"l{index}", latency=latency,
                              bandwidth=1e6 + index)
        network.connect(machines[a], machines[b], profile)
        graph.add_edge(a, b, weight=latency, bandwidth=profile.bandwidth)
    return network, machines, graph


@given(st.integers(min_value=2, max_value=8), edge_lists)
@settings(max_examples=80, deadline=None)
def test_reachability_matches_networkx(n, edges):
    network, machines, graph = build_both(n, edges)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            ours = network.wan_route(machines[src], machines[dst])
            theirs = nx.has_path(graph, src, dst)
            assert (ours is not None) == theirs


@given(st.integers(min_value=2, max_value=8), edge_lists)
@settings(max_examples=80, deadline=None)
def test_path_latency_matches_networkx_shortest(n, edges):
    network, machines, graph = build_both(n, edges)
    for src in range(n):
        for dst in range(src + 1, n):
            route = network.wan_route(machines[src], machines[dst])
            if route is None:
                continue
            ours = sum(link.profile.latency for link in route)
            theirs = nx.shortest_path_length(graph, src, dst,
                                             weight="weight")
            assert ours == pytest.approx(theirs)


@given(st.integers(min_value=2, max_value=8), edge_lists)
@settings(max_examples=60, deadline=None)
def test_collapsed_profile_invariants(n, edges):
    """The collapsed path profile's latency equals the route sum and its
    bandwidth equals the route bottleneck."""
    network, machines, _graph = build_both(n, edges)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            route = network.wan_route(machines[src], machines[dst])
            if not route:
                continue
            profile = network.wan_path_profile(machines[src], machines[dst])
            assert profile.latency == pytest.approx(
                sum(link.profile.latency for link in route))
            assert profile.bandwidth == min(link.profile.bandwidth
                                            for link in route)


@given(st.integers(min_value=2, max_value=6), edge_lists)
@settings(max_examples=40, deadline=None)
def test_route_is_a_valid_walk(n, edges):
    """Every returned route must be a connected walk from src to dst."""
    network, machines, _graph = build_both(n, edges)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            route = network.wan_route(machines[src], machines[dst])
            if route is None:
                continue
            cursor = machines[src]
            for link in route:
                assert cursor in (link.a, link.b)
                cursor = link.other(cursor)
            assert cursor is machines[dst]
