"""The runner registry: what a fleet worker is allowed to execute.

A :class:`~repro.fleet.pool.FleetTask` names its runner as a string so
the task spec stays declarative.  Resolution accepts two forms:

* a **registered name** (``"load.run_scenario"``) from :data:`RUNNERS`
  — the stable vocabulary the planners in :mod:`repro.fleet.plan` use;
* a **dotted path** (``"package.module:function"``) importable in the
  worker — the escape hatch for tests and one-off experiments.  Spawned
  workers inherit ``sys.path``, so anything importable in the parent is
  importable in the child, but *registrations* made at runtime in the
  parent are not: a spawn child starts from a fresh interpreter, which
  is why the registry is populated at module import time only.
"""

from __future__ import annotations

import contextlib
import dataclasses
import importlib
import io
import time
import typing as _t

RUNNERS: dict[str, _t.Callable[..., object]] = {}


def register_runner(name: str):
    """Register ``fn`` under ``name`` (module-import time only)."""
    def wrap(fn: _t.Callable[..., object]):
        RUNNERS[name] = fn
        return fn
    return wrap


def resolve_runner(name: str) -> _t.Callable[..., object]:
    """Look up a registered runner, or import a ``module:callable``."""
    fn = RUNNERS.get(name)
    if fn is not None:
        return fn
    module_name, sep, attr = name.partition(":")
    if not sep or not module_name or not attr:
        raise LookupError(
            f"unknown fleet runner {name!r}: not registered and not a "
            "'module:callable' path")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise LookupError(
            f"fleet runner path {name!r} does not name a callable")
    return fn


# -- the built-in runners -----------------------------------------------------

@register_runner("load.run_scenario")
def run_scenario_task(scenario, stream_dir: str | None = None,
                      stream: _t.Mapping[str, object] | None = None):
    """Run one :class:`~repro.load.scenario.LoadScenario`.

    With ``stream_dir``, spans spool to sharded JSONL there (the plan
    hands every task its own subdirectory, so spools never collide);
    ``stream`` carries extra :class:`~repro.obs.stream.StreamConfig`
    fields (policy, seed, rotation limits).  Returns the portable form
    of the :class:`~repro.load.clients.LoadResult`.
    """
    from ..load.clients import run_scenario
    from ..obs.stream import StreamConfig

    config = None
    if stream_dir is not None:
        import os

        os.makedirs(stream_dir, exist_ok=True)
        config = StreamConfig(directory=stream_dir,
                              **dict(stream or {}))
    result = run_scenario(scenario, stream=config)
    return result.portable()


@register_runner("load.capacity_probe")
def run_probe_task(scenario, slo, rate: float):
    """Evaluate one capacity-bisection probe rate.

    Exactly the serial probe — same :func:`run_scenario` execution,
    same SLO evaluation — so a speculatively evaluated rate carries the
    identical verdict the serial search would have computed.
    """
    from ..load.capacity import _probe

    return _probe(scenario, slo, rate)


@register_runner("place.capacity")
def run_place_capacity_task(scenario, slo, low: float, high: float,
                            tolerance: float = 0.05, max_probes: int = 12):
    """Validate one placement candidate by simulated capacity search.

    The payload's ``scenario`` arrives already compiled from a
    :class:`repro.place.Placement` (plain frozen data, so it pickles);
    the worker runs the same deterministic bisection the serial path
    uses and returns the full :class:`~repro.load.capacity.CapacityResult`.
    """
    from ..load.capacity import find_capacity

    return find_capacity(scenario, slo, low=low, high=high,
                         tolerance=tolerance, max_probes=max_probes)


@dataclasses.dataclass(frozen=True)
class BenchArtefactResult:
    """One bench artefact's output, portable across the pool.

    ``fragments`` is the worker-local :class:`BenchRecord` flattened to
    plain tuples (see :meth:`repro.bench.record.BenchRecord.fragments`);
    the parent absorbs them into its own record in task-key order, so
    the merged document is independent of completion order.
    """

    name: str
    stdout: str
    wall_s: float
    fragments: tuple[tuple[str, str, float, str, str, str], ...]


@register_runner("bench.artefact")
def run_bench_artefact_task(name: str, quick: bool = False
                            ) -> BenchArtefactResult:
    """Run one ``python -m repro.bench`` artefact in this worker.

    Stdout is captured (the parent replays it in selection order) and
    the artefact's metrics come back as record fragments rather than a
    live :class:`BenchRecord` — plain data over the wire.
    """
    from ..bench.__main__ import ARTEFACTS
    from ..bench.record import BenchRecord

    try:
        fn = ARTEFACTS[name]
    except KeyError:
        raise LookupError(f"unknown bench artefact {name!r}") from None
    record = BenchRecord(f"fleet-{name}", quick=quick)
    out = io.StringIO()
    started = time.perf_counter()
    with contextlib.redirect_stdout(out):
        fn(quick, record)
    return BenchArtefactResult(
        name=name,
        stdout=out.getvalue(),
        wall_s=time.perf_counter() - started,
        fragments=record.fragments(),
    )


__all__ = [
    "BenchArtefactResult",
    "RUNNERS",
    "register_runner",
    "resolve_runner",
    "run_bench_artefact_task",
    "run_place_capacity_task",
    "run_probe_task",
    "run_scenario_task",
]
