"""Dedicated forwarding processor (Section 3.3, Table 1 row 2).

"Another approach ... is to define a dedicated *forwarding* processor.
This processor receives all incoming communication associated with a
specific communication method and forwards these communications to their
intended destination by using an alternative method.  For example, in an
SP2 environment, all TCP communications from external sources would be
routed to a single SP node, which in turn would forward these
communications to other nodes by using MPL.  The use of a forwarding node
means that other nodes need not check for communications with the
forwarded communication method."

Installation rewrites each member context's exported descriptor: its
``tcp`` entry gains a ``via = <forwarder context id>`` parameter, so any
startpoint bound afterwards routes external TCP traffic through the
forwarder; the member then stops polling TCP entirely.  The forwarder
re-issues arriving messages over the fast intra-partition method, paying
a per-message forwarding overhead — which is why, as the paper observes,
well-tuned polling can beat forwarding when every node has good TCP
connectivity.
"""

from __future__ import annotations

import typing as _t

from ..transports.base import WireMessage
from ..util.units import microseconds
from .errors import NexusError

if _t.TYPE_CHECKING:  # pragma: no cover
    from .context import Context
    from .runtime import Nexus


class ForwardingService:
    """Routes one method's traffic for a set of contexts via a forwarder."""

    def __init__(self, nexus: "Nexus", *, method: str = "tcp",
                 fast_method: str = "mpl",
                 forward_overhead: float = microseconds(50.0)):
        self.nexus = nexus
        self.method = method
        self.fast_method = fast_method
        self.forward_overhead = forward_overhead
        self.forwarder: "Context | None" = None
        self.members: list["Context"] = []
        self.messages_forwarded = 0
        self.bytes_forwarded = 0

    def install(self, forwarder: "Context",
                members: _t.Iterable["Context"]) -> None:
        """Designate ``forwarder`` and reroute every member's descriptors.

        Must be called before startpoints to the members are created:
        descriptor tables already copied onto existing links are not
        rewritten (matching the paper, where tables travel by value).
        """
        if self.forwarder is not None:
            raise NexusError("forwarding service is already installed")
        self.forwarder = forwarder
        forwarder.forwarder = self
        # A persistent service loop guarantees liveness: traffic landing at
        # the forwarder is dispatched (and re-sent) even while the
        # forwarder's own application code computes or after it finishes.
        # The forwarder context still polls the forwarded method itself, so
        # an application rank doubling as forwarder keeps paying the poll
        # tax — which is why the paper measures forwarding ~= skip_poll 1.
        self.nexus.sim.spawn(self._service_loop(forwarder),
                             name=f"forwarder:{self.method}@ctx{forwarder.id}")

        for member in members:
            if member is forwarder:
                continue
            table = member.export_table()
            if self.method not in table:
                raise NexusError(
                    f"context {member.id} has no {self.method!r} descriptor "
                    "to reroute"
                )
            original = table.entry(self.method)
            table.replace(self.method,
                          original.with_param("via", forwarder.id))
            # The member no longer needs to check for this method at all.
            member.poll_manager.disable(self.method)
            self.members.append(member)
        self.nexus.tracer.incr("forwarding.installs")

    def _service_loop(self, forwarder: "Context"):
        """Drain the forwarder's inbox for the forwarded method, forever.

        Runs concurrently with the forwarder's own application process;
        the Store hands each arriving message to exactly one consumer, so
        there is no double delivery when the application's own polls race
        this loop.
        """
        inbox = forwarder.inbox(self.method)
        dispatch_cost = self.nexus.runtime_costs.dispatch_cost
        while True:
            message = yield inbox.get()
            yield from forwarder.charge(dispatch_cost)
            yield from forwarder.dispatch(_t.cast(WireMessage, message))

    def forward(self, forwarder_context: "Context", message: WireMessage):
        """Generator: re-send an externally received message to its real
        destination over the fast intra-partition method."""
        if forwarder_context is not self.forwarder:
            raise NexusError("forward() called on a non-forwarder context")
        if message.trace is not None:
            message.trace.hops += 1
            message.trace.transition("forward", ctx=forwarder_context.id,
                                     hop=message.trace.hops,
                                     fast_method=self.fast_method)
        yield from forwarder_context.charge(self.forward_overhead)

        registry = self.nexus.transports
        fast = registry.get(self.fast_method)
        destination = self.nexus._resolve_context(message.dst_context)
        descriptor = fast.export_descriptor(destination)
        if descriptor is None:
            raise NexusError(
                f"forwarder cannot reach context {message.dst_context} "
                f"via {self.fast_method!r}"
            )
        comm = forwarder_context.comm_object_for(descriptor)
        self.messages_forwarded += 1
        self.bytes_forwarded += message.nbytes
        self.nexus.tracer.incr("forwarding.messages")
        yield from comm.send(message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fid = self.forwarder.id if self.forwarder else None
        return (f"<ForwardingService {self.method}->{self.fast_method} "
                f"forwarder={fid} forwarded={self.messages_forwarded}>")
