"""Per-RSR critical-path extraction over span parent/fork links.

Each traced RSR is a tree of spans (multicast forks and forwarding hops
included).  The *critical path* of one RSR is the root-to-leaf chain
ending at the latest-finishing span — the sequence of phases that
actually determined its end-to-end latency; everything off that chain
overlapped something slower.

Attribution is exact by construction: walking the path root → leaf,
each non-leaf step is charged ``next.start - this.start`` (the time the
RSR sat in this phase before the next one took over — lifecycle phases
are contiguous, so this is normally the span's own duration, and for
the long-lived ``issue`` root it is the slice before hand-off) and the
leaf is charged its full duration, so the step times sum exactly to the
end-to-end latency.  Summing steps by phase answers "where did the p99
RSR spend its time"; the ``wire`` steps carry per-link attribution
(which context, which method).

Context ids are renumbered densely by first appearance and paths sort
by (latency desc, rsr id), so extraction and the JSON export are
byte-deterministic across identical runs.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import typing as _t

from .spans import PHASE_WIRE, Observability, Span, TraceIncompleteError

CRITPATH_SCHEMA = "repro.obs.critpath"
CRITPATH_SCHEMA_VERSION = 1

_JSON_KW: dict[str, object] = {"sort_keys": True,
                               "separators": (",", ":")}


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One phase on a critical path, with its exact latency share."""

    phase: str
    lane: str
    rank: int           # dense context rank (deterministic)
    start_s: float
    share_s: float      # this step's contribution to end-to-end latency


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """The latency-determining chain of one RSR."""

    rsr: int
    handler: str
    latency_s: float
    dropped: bool       # the path ends at a dropped message
    steps: tuple[PathStep, ...]

    @property
    def phase_s(self) -> dict[str, float]:
        """Latency share summed by phase, in path order."""
        out: dict[str, float] = {}
        for step in self.steps:
            out[step.phase] = out.get(step.phase, 0.0) + step.share_s
        return out

    @property
    def wire_hops(self) -> int:
        return sum(1 for step in self.steps if step.phase == PHASE_WIRE)


class CritpathBuilder:
    """Incremental critical-path fold over per-RSR span groups.

    Holds a bounded working set: one pending path per folded RSR (or a
    ``top_k``-sized heap when a cap is given) plus a per-context minimum
    span id, which canonicalises dense ranks — for an id-ordered span
    log, ordering contexts by their smallest span id reproduces the
    first-appearance order :func:`extract_critical_paths` uses, so the
    folded paths are identical to the in-memory extraction.
    """

    def __init__(self, *, top_k: int | None = None) -> None:
        self.top_k = top_k
        self._ctx_min: dict[int, int] = {}
        # Entries (latency_s, -rsr, payload); rsr ids are unique so the
        # payload never takes part in heap comparisons.
        self._paths: list[tuple] = []

    def note_span(self, span: Span) -> None:
        """Track ``span``'s context for rank canonicalisation (called
        for every span, including ones whose RSR is folded later)."""
        cur = self._ctx_min.get(span.ctx)
        if cur is None or span.id < cur:
            self._ctx_min[span.ctx] = span.id

    def add_rsr(self, rsr: int, spans: _t.Sequence[Span]) -> None:
        """Fold one RSR's complete span group."""
        for span in spans:
            self.note_span(span)
        by_id = {span.id: span for span in spans}
        finished = [span for span in spans if span.end is not None]
        if not finished:
            return
        leaf = max(finished, key=lambda span: (span.end, span.id))
        chain: list[Span] = []
        cursor: Span | None = leaf
        while cursor is not None:
            chain.append(cursor)
            cursor = (by_id.get(cursor.parent)
                      if cursor.parent is not None else None)
        chain.reverse()
        steps: list[tuple[str, str, int, float, float]] = []
        for index, span in enumerate(chain):
            if index + 1 < len(chain):
                share = chain[index + 1].start - span.start
            else:
                share = _t.cast(float, span.end) - span.start
            steps.append((span.phase, span.lane, span.ctx,
                          span.start, share))
        root = chain[0]
        handler = ""
        if root.attrs is not None:
            handler = str(root.attrs.get("handler", ""))
        dropped = bool(leaf.attrs and leaf.attrs.get("dropped"))
        latency = _t.cast(float, leaf.end) - root.start
        entry = (latency, -rsr, (rsr, handler, dropped, tuple(steps)))
        if self.top_k is None:
            self._paths.append(entry)
        else:
            heapq.heappush(self._paths, entry)
            if len(self._paths) > self.top_k:
                heapq.heappop(self._paths)

    def finish(self) -> list[CriticalPath]:
        """Materialise the folded paths, slowest first."""
        order = sorted(self._ctx_min, key=lambda ctx: self._ctx_min[ctx])
        ranks = {ctx: rank for rank, ctx in enumerate(order)}
        paths = []
        for latency, _neg_rsr, (rsr, handler, dropped,
                                raw_steps) in self._paths:
            steps = tuple(
                PathStep(phase=phase, lane=lane, rank=ranks[ctx],
                         start_s=start_s, share_s=share_s)
                for phase, lane, ctx, start_s, share_s in raw_steps)
            paths.append(CriticalPath(
                rsr=rsr, handler=handler, latency_s=latency,
                dropped=dropped, steps=steps))
        paths.sort(key=lambda path: (-path.latency_s, path.rsr))
        return paths


def extract_critical_paths(source: "Observability | _t.Sequence[Span]", *,
                           top_k: int | None = None,
                           allow_partial: bool = False
                           ) -> list[CriticalPath]:
    """Critical paths of every traced RSR, slowest first.

    ``top_k`` keeps only the K slowest.  RSRs with no finished span
    (nothing ever closed) are skipped; a path ending at a dropped
    message is kept and flagged ``dropped``.  A source that recorded
    capacity drops has holes in its parent links, so by default
    extraction raises :class:`TraceIncompleteError` (override with
    ``allow_partial=True``).
    """
    dropped_spans = (source.dropped_spans
                     if isinstance(source, Observability) else 0)
    if dropped_spans and not allow_partial:
        raise TraceIncompleteError(
            f"span log dropped {dropped_spans} spans at capacity; "
            f"critical paths would have broken chains (pass "
            f"allow_partial=True to extract anyway)")
    spans = source.spans if isinstance(source, Observability) else source
    ctx_rank: dict[int, int] = {}
    for span in spans:
        if span.ctx not in ctx_rank:
            ctx_rank[span.ctx] = len(ctx_rank)
    by_rsr: dict[int, list[Span]] = {}
    for span in spans:
        if span.rsr > 0:
            by_rsr.setdefault(span.rsr, []).append(span)

    paths: list[CriticalPath] = []
    for rsr, rsr_spans in by_rsr.items():
        by_id = {span.id: span for span in rsr_spans}
        finished = [span for span in rsr_spans if span.end is not None]
        if not finished:
            continue
        leaf = max(finished, key=lambda span: (span.end, span.id))
        chain: list[Span] = []
        cursor: Span | None = leaf
        while cursor is not None:
            chain.append(cursor)
            cursor = (by_id.get(cursor.parent)
                      if cursor.parent is not None else None)
        chain.reverse()
        steps: list[PathStep] = []
        for index, span in enumerate(chain):
            if index + 1 < len(chain):
                share = chain[index + 1].start - span.start
            else:
                share = _t.cast(float, span.end) - span.start
            steps.append(PathStep(
                phase=span.phase, lane=span.lane,
                rank=ctx_rank[span.ctx],
                start_s=span.start, share_s=share))
        root = chain[0]
        handler = ""
        if root.attrs is not None:
            handler = str(root.attrs.get("handler", ""))
        dropped = bool(leaf.attrs and leaf.attrs.get("dropped"))
        paths.append(CriticalPath(
            rsr=rsr, handler=handler,
            latency_s=_t.cast(float, leaf.end) - root.start,
            dropped=dropped, steps=tuple(steps)))

    paths.sort(key=lambda path: (-path.latency_s, path.rsr))
    return paths[:top_k] if top_k is not None else paths


def phase_attribution(paths: _t.Sequence[CriticalPath]
                      ) -> dict[str, float]:
    """Total critical-path seconds per phase across ``paths`` — where
    end-to-end latency actually accumulates."""
    totals: dict[str, float] = {}
    for path in paths:
        for phase, share in path.phase_s.items():
            totals[phase] = totals.get(phase, 0.0) + share
    return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))


# -- export -------------------------------------------------------------------

def critpath_document(paths: _t.Sequence[CriticalPath], *,
                      meta: _t.Mapping[str, object] | None = None
                      ) -> dict[str, object]:
    """Critical paths as a JSON-ready, deterministic document."""
    return {
        "schema": CRITPATH_SCHEMA,
        "schema_version": CRITPATH_SCHEMA_VERSION,
        "paths": [
            {
                "rsr": path.rsr,
                "handler": path.handler,
                "latency_s": path.latency_s,
                "dropped": path.dropped,
                "wire_hops": path.wire_hops,
                "phase_s": path.phase_s,
                "steps": [dataclasses.asdict(step) for step in path.steps],
            }
            for path in paths
        ],
        "phase_attribution_s": phase_attribution(paths),
        "meta": dict(meta) if meta else {},
    }


def dumps_critpaths(paths: _t.Sequence[CriticalPath], *,
                    meta: _t.Mapping[str, object] | None = None) -> str:
    return json.dumps(critpath_document(paths, meta=meta),
                      **_JSON_KW)  # type: ignore[arg-type]


def write_critpaths(path: str, paths: _t.Sequence[CriticalPath], *,
                    meta: _t.Mapping[str, object] | None = None) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_critpaths(paths, meta=meta))
        handle.write("\n")


__all__ = [
    "CRITPATH_SCHEMA",
    "CRITPATH_SCHEMA_VERSION",
    "CriticalPath",
    "CritpathBuilder",
    "PathStep",
    "critpath_document",
    "dumps_critpaths",
    "extract_critical_paths",
    "phase_attribution",
    "write_critpaths",
]
