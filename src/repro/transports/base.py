"""Communication-module interface (the paper's Figure 2 machinery).

A *communication module* implements one low-level communication method.
Per the paper, each module exposes a standard interface — initialisation,
descriptor construction, communication functions — accessed through a
*function table* so that many modules coexist in one executable.  In this
Python reproduction the function table is simply the
:class:`Transport` object itself (its bound methods *are* the table); the
:class:`~repro.transports.registry.TransportRegistry` plays the role of
module loading.

Key types:

* :class:`Descriptor` — what a context publishes about how to reach it via
  one method ("communication descriptor"): method name, context id, plus
  method-specific parameters (e.g. MPL's node number and session id).
* :class:`WireMessage` — the RSR envelope that actually travels.
* :class:`Transport` — the module ABC: applicability checks, comm-object
  state construction, ``send`` and ``poll``.

Transports are written against a narrow structural view of a Nexus
context (:class:`ContextLike`) to keep the layering acyclic: transports
sit *below* :mod:`repro.core` yet must deliver into contexts.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

from ..simnet.resources import Store
from .costmodels import TransportCosts
from .errors import TransportError

if _t.TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from ..obs import MessageTrace, Observability
    from ..simnet.engine import Simulator
    from ..simnet.network import Network
    from ..simnet.node import Host
    from ..simnet.trace import Tracer


@dataclasses.dataclass(frozen=True)
class Descriptor:
    """A communication descriptor: how to reach one context via one method.

    ``params`` is a tuple of key/value pairs (not a dict) so descriptors
    are hashable and their wire form is canonical.
    """

    method: str
    context_id: int
    params: tuple[tuple[str, object], ...] = ()

    def param(self, key: str, default: object = None) -> object:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_param(self, key: str, value: object) -> "Descriptor":
        """A copy with ``key`` set (replacing an existing value)."""
        params = tuple((k, v) for k, v in self.params if k != key)
        return dataclasses.replace(self, params=params + ((key, value),))

    @property
    def wire_size(self) -> int:
        """Approximate serialised size in bytes (descriptor tables travel
        with startpoints; the paper notes they cost "a few tens of bytes")."""
        size = 8 + len(self.method)
        for k, v in self.params:
            size += len(k) + (len(str(v)) if not isinstance(v, (int, float)) else 8)
        return size

    def to_wire(self) -> tuple:
        return (self.method, self.context_id, self.params)

    @classmethod
    def from_wire(cls, wire: tuple) -> "Descriptor":
        method, context_id, params = wire
        return cls(method=method, context_id=context_id,
                   params=tuple((k, v) for k, v in params))


@dataclasses.dataclass(slots=True)
class WireMessage:
    """The RSR envelope as it travels over a transport.

    ``payload`` is opaque to the transport (the core layer packs a
    :class:`repro.core.buffers.Buffer`); ``nbytes`` is the wire size
    including the Nexus header.
    """

    handler: str
    endpoint_id: int
    src_context: int
    dst_context: int
    payload: object
    nbytes: int
    method: str = ""
    sent_at: float = 0.0
    arrived_at: float = 0.0
    headers: dict[str, object] = dataclasses.field(default_factory=dict)
    #: Observability state (:class:`repro.obs.MessageTrace`); ``None``
    #: whenever tracing is disabled, so instrumentation sites reduce to
    #: one attribute load and a branch.
    trace: "MessageTrace | None" = dataclasses.field(
        default=None, repr=False, compare=False)

    @property
    def age_key(self) -> tuple[float, int]:
        return (self.sent_at, self.endpoint_id)


@dataclasses.dataclass(slots=True)
class InTransitMessage:
    """A message that has reached the destination *device* but has not yet
    been drained to user space (fast-transport receive model)."""

    message: WireMessage
    arrival_start: float
    ready_at: float
    foreign_at_arrival: float


class TransportServices:
    """What the runtime hands every transport at construction time.

    ``resolve_context`` is installed by the runtime once contexts exist;
    it maps a context id to the live context object so transports can
    route by id (the only form of addressing that travels on the wire).
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 tracer: "Tracer", rng: "np.random.Generator"):
        self.sim = sim
        self.network = network
        self.tracer = tracer
        self.rng = rng
        self.resolve_context: _t.Callable[[int], "ContextLike"] | None = None
        #: Installed by the runtime; carries Nexus-layer cost constants
        #: (drain-overlap factor etc.).
        self.runtime_costs: object | None = None
        #: Installed by the runtime; the span tracer + metrics registry.
        self.obs: "Observability | None" = None

    def context(self, context_id: int) -> "ContextLike":
        if self.resolve_context is None:
            raise TransportError(
                "transport services have no context resolver installed"
            )
        return self.resolve_context(context_id)


@_t.runtime_checkable
class ContextLike(_t.Protocol):
    """The slice of a Nexus context that transports interact with."""

    id: int
    name: str
    host: "Host"
    foreign_poll_total: float
    device_busy: dict[str, float]

    def inbox(self, method: str) -> Store: ...
    def device_queue(self, method: str) -> list[InTransitMessage]: ...


class Transport(abc.ABC):
    """Base class for communication modules.

    Subclasses define class attributes ``name`` and ``speed_rank`` (lower
    rank = faster method; descriptor tables are ordered by rank to realise
    the paper's "fastest first" automatic selection policy) and implement
    the four interface methods.
    """

    #: Module name; also the descriptor ``method`` field.
    name: _t.ClassVar[str]
    #: Ordering key for fastest-first descriptor tables (lower = faster).
    speed_rank: _t.ClassVar[int]

    def __init__(self, services: TransportServices, costs: TransportCosts):
        self.services = services
        self.costs = costs
        #: The simulator, cached as a plain attribute: ``services.sim``
        #: is fixed for the life of the runtime and transports touch it
        #: on every send/poll, so a property frame here is pure cost.
        self.sim = services.sim
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Tracer counter keys, precomputed — :meth:`record_send` runs
        #: once per message and the f-strings showed up in profiles.
        self._k_messages_sent = f"{self.name}.messages_sent"
        self._k_bytes_sent = f"{self.name}.bytes_sent"

    # -- convenience -------------------------------------------------------

    @property
    def wire_method(self) -> str:
        """The method name used for wire-level lookups (switch profiles,
        per-transport WAN links).  Normally ``self.name``; aliased
        transports — e.g. a compression stack riding TCP, or secure TCP —
        override it so their traffic uses the underlying wire."""
        return getattr(self, "_wire_method", self.name)

    @property
    def network(self) -> "Network":
        return self.services.network

    @property
    def poll_cost(self) -> float:
        return self.costs.poll_cost

    @property
    def steals_device_time(self) -> bool:
        return self.costs.steals_device_time

    @property
    def supports_blocking(self) -> bool:
        return self.costs.supports_blocking

    # -- interface ------------------------------------------------------------

    @abc.abstractmethod
    def export_descriptor(self, context: ContextLike) -> Descriptor | None:
        """The descriptor ``context`` publishes for this method, or ``None``
        if this method cannot possibly reach ``context``."""

    @abc.abstractmethod
    def applicable(self, local: ContextLike, descriptor: Descriptor,
                   remote_host: "Host") -> bool:
        """Can ``local`` use this method to reach the descriptor's context?

        This is the method-specific criterion of Section 3.2 (e.g. MPL
        requires both contexts in the same SP partition & session).
        """

    def open(self, local: ContextLike, descriptor: Descriptor
             ) -> "dict[str, object]":
        """Construct communication-object state for a new connection.

        Returns a mutable state dict stored in the comm object.  The base
        implementation records the (one-time) connect cost which the comm
        object charges on first use.
        """
        return {"connect_cost": self.costs.connect_cost, "connected": False}

    @abc.abstractmethod
    def send(self, local: ContextLike, state: dict, descriptor: Descriptor,
             message: WireMessage):
        """Generator: transmit ``message``; resumes when the sender may
        continue (asynchronous RSR semantics — *not* when delivered)."""

    @abc.abstractmethod
    def poll(self, context: ContextLike):
        """Generator: one poll of this method at ``context``.

        Charges this method's poll cost to virtual time and returns the
        list of :class:`WireMessage` now ready for dispatch.
        """

    # -- shared helpers -----------------------------------------------------

    def _charge(self, seconds: float):
        """Generator: charge CPU time to the virtual clock."""
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def _destination(self, descriptor: Descriptor) -> "ContextLike":
        """Resolve the live destination context of a descriptor."""
        return self.services.context(descriptor.context_id)

    def record_send(self, message: WireMessage) -> None:
        nbytes = message.nbytes
        self.messages_sent += 1
        self.bytes_sent += nbytes
        # Inlined tracer.incr pair on precomputed keys.
        counters = self.services.tracer.counters
        counters[self._k_messages_sent] += 1
        counters[self._k_bytes_sent] += nbytes

    def record_drop(self, message: WireMessage | None = None,
                    nbytes: int | None = None) -> None:
        """Account one dropped message (byte-accurate), closing its
        lifecycle trace if it carries one."""
        if nbytes is None:
            nbytes = message.nbytes if message is not None else 0
        self.messages_dropped += 1
        self.bytes_dropped += nbytes
        tracer = self.services.tracer
        tracer.incr(f"{self.name}.messages_dropped")
        tracer.incr(f"{self.name}.bytes_dropped", nbytes)
        if message is not None and message.trace is not None:
            message.trace.drop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} sent={self.messages_sent}>"
