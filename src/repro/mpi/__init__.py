"""repro.mpi — a mini-MPI layered on the Nexus core.

Reproduces the structure of the MPICH-on-Nexus implementation the paper
used: two-sided tag/source matching, communicators with private contexts,
blocking and nonblocking point-to-point, and tree-based collectives — all
over one-sided RSRs, so every MPI call exercises the multimethod polling
machinery.
"""

from .collectives import OPS, resolve_op
from .communicator import Communicator
from .datatypes import Padded, Payload, pack_payload, payload_nbytes, unpack_payload
from .errors import (
    MatchingError,
    MpiError,
    RankError,
    RequestError,
    TruncationError,
)
from .matching import MatchingQueues, MpiMessage, PostedRecv
from .mpi import MPI_ENVELOPE_BYTES, MPIWorld, MpiConfig, MpiProcess
from .request import RecvRequest, Request, SendRequest, wait_all
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MPIWorld",
    "MPI_ENVELOPE_BYTES",
    "MatchingError",
    "MatchingQueues",
    "MpiConfig",
    "MpiError",
    "MpiMessage",
    "MpiProcess",
    "OPS",
    "Padded",
    "Payload",
    "PostedRecv",
    "RankError",
    "RecvRequest",
    "Request",
    "RequestError",
    "SendRequest",
    "Status",
    "TruncationError",
    "pack_payload",
    "payload_nbytes",
    "resolve_op",
    "unpack_payload",
    "wait_all",
]
