"""Simulated hosts (processor nodes).

A :class:`Host` models one processor of a parallel machine: it has a CPU
(a capacity-1 :class:`~repro.simnet.resources.Resource`, so co-resident
contexts serialise their compute, as on the Intel Paragon where several
processes can share a processor) and a NIC resource used by transports that
serialise outgoing messages.

Hosts belong to a :class:`~repro.simnet.network.Machine` and optionally to
a :class:`~repro.simnet.network.Partition` (the SP2 software abstraction the
paper's experiments revolve around).
"""

from __future__ import annotations

import itertools
import typing as _t

from .resources import Resource

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator
    from .network import Machine, Partition

_host_ids = itertools.count()


class Host:
    """One simulated processor node."""

    def __init__(self, sim: "Simulator", name: str,
                 machine: "Machine | None" = None,
                 cpu_capacity: int = 1):
        self.sim = sim
        self.id: int = next(_host_ids)
        self.name = name
        self.machine = machine
        self.partition: "Partition | None" = None
        self.cpu = Resource(sim, capacity=cpu_capacity, name=f"cpu:{name}")
        self.nic = Resource(sim, capacity=1, name=f"nic:{name}")
        #: Arbitrary attributes (e.g. "has_blocking_io") consulted by
        #: transport applicability checks and the enquiry API.
        self.attributes: dict[str, object] = {}
        self.busy_time = 0.0

    def compute(self, seconds: float):
        """Generator: occupy this host's CPU for ``seconds``.

        All simulated computation (model physics, protocol CPU overheads
        charged by transports) goes through here so that per-host busy time
        is accounted for and co-resident contexts contend realistically.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        if seconds == 0:
            return
        yield self.cpu.request()
        try:
            yield self.sim.timeout(seconds)
            self.busy_time += seconds
        finally:
            self.cpu.release()

    # -- topology predicates ---------------------------------------------

    def same_host(self, other: "Host") -> bool:
        return self is other

    def same_partition(self, other: "Host") -> bool:
        return (self.partition is not None
                and self.partition is other.partition)

    def same_machine(self, other: "Host") -> bool:
        return self.machine is not None and self.machine is other.machine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        part = self.partition.name if self.partition else None
        return f"<Host {self.name!r} id={self.id} partition={part!r}>"
