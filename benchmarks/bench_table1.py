"""Regenerate Table 1: coupled-model seconds per timestep, all rows.

Rows: Selective TCP, Forwarding, skip poll {1, 100, 10000, 12000,
13000}, plus skip poll 100000 (to exhibit the detection-latency rise)
and the all-TCP no-multimethod baseline the paper's text describes.
Shape criteria: selective best; select-overhead region decreasing;
detection region rising; tuned polling beats forwarding; all-TCP is
several times worse than any multimethod row.
"""

from repro.bench import check_table1_shape, record_table1, table1


def test_table1(run_once, bench_record):
    table = run_once(table1)
    print()
    print(table.render())
    record_table1(bench_record, table)
    check_table1_shape(table)
