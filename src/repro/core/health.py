"""Per-(remote context, method) communication-method health tracking.

The failure-recovery design reuses the paper's selection machinery as a
degradation ladder: when a method keeps failing towards some remote
context, the health tracker marks it *down*, the descriptor-table scan
skips it (so the first-applicable rule picks the next-fastest healthy
method), and after a cool-off the next send is allowed through as a
*probe* — success re-enables the method, failure re-downs it instantly.

States per ``(remote context id, method)`` key::

    UP ──(failure_threshold consecutive failures)──▶ DOWN
    DOWN ──(cool-off elapses; next send is the probe)──▶ PROBE
    PROBE ──success──▶ UP          PROBE ──failure──▶ DOWN

UP entries are not stored at all, so the tracker costs nothing on the
happy path; :attr:`HealthTracker.epoch` and
:attr:`HealthTracker.next_probe_at` let callers cache "everything is
healthy" decisions with two comparisons.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .errors import NexusError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..simnet.engine import Simulator

STATE_DOWN = "down"
STATE_PROBE = "probe"


@dataclasses.dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs for method-health tracking.

    ``failure_threshold`` consecutive failures mark a method down;
    after ``cooloff`` sim-seconds the next send towards the remote is
    admitted as a probe.
    """

    failure_threshold: int = 3
    cooloff: float = 0.25

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise NexusError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold!r}")
        if self.cooloff <= 0:
            raise NexusError(f"cooloff must be positive, got {self.cooloff!r}")


@dataclasses.dataclass
class _Entry:
    failures: int = 0
    state: str = ""  # "" while counting failures below the threshold
    down_since: float = 0.0


class HealthTracker:
    """Tracks method health for one local context.

    Sparse: only methods with recent failures have entries.  Every state
    transition bumps :attr:`epoch` and appends a
    ``(sim_time, remote_context_id, method, transition)`` tuple to
    :attr:`events` (transitions: ``down``, ``probe``, ``probe_failed``,
    ``up``).
    """

    def __init__(self, sim: "Simulator", config: HealthConfig | None = None):
        self.sim = sim
        self.config = config or HealthConfig()
        self._entries: dict[tuple[int, str], _Entry] = {}
        #: Bumped on every transition; cache "nothing changed" with it.
        self.epoch = 0
        #: Earliest sim-time any DOWN method becomes probeable (inf when
        #: none are down) — the other half of the caching fast path.
        self.next_probe_at = float("inf")
        self.events: list[tuple[float, int, str, str]] = []

    def _note(self, remote: int, method: str, transition: str) -> None:
        self.epoch += 1
        self.events.append((self.sim.now, remote, method, transition))

    def _recompute_next_probe(self) -> None:
        self.next_probe_at = min(
            (entry.down_since + self.config.cooloff
             for entry in self._entries.values()
             if entry.state == STATE_DOWN),
            default=float("inf"))

    # -- recording ---------------------------------------------------------

    def record_failure(self, remote: int, method: str) -> bool:
        """One failed delivery; returns True if the method just went
        (or went back) down."""
        entry = self._entries.setdefault((remote, method), _Entry())
        entry.failures += 1
        if entry.state == STATE_PROBE:
            # A failed probe re-downs the method immediately and restarts
            # the cool-off from now.
            entry.state = STATE_DOWN
            entry.down_since = self.sim.now
            self._note(remote, method, "probe_failed")
            self._recompute_next_probe()
            return True
        if entry.state != STATE_DOWN \
                and entry.failures >= self.config.failure_threshold:
            entry.state = STATE_DOWN
            entry.down_since = self.sim.now
            self._note(remote, method, "down")
            self._recompute_next_probe()
            return True
        return False

    def record_success(self, remote: int, method: str) -> None:
        """One successful delivery; clears the entry (and logs ``up``
        when it closes a probe)."""
        entry = self._entries.pop((remote, method), None)
        if entry is None:
            return
        if entry.state == STATE_PROBE:
            self._note(remote, method, "up")
            self._recompute_next_probe()
        elif entry.state == STATE_DOWN:  # pragma: no cover - defensive
            self._note(remote, method, "up")
            self._recompute_next_probe()
        else:
            # Sub-threshold failure streak broken: no state transition,
            # but the streak counter resets (epoch unchanged).
            pass

    def mark_down(self, remote: int, method: str) -> None:
        """Seed a DOWN entry directly (mobile startpoints import the
        sender's view of method health this way)."""
        entry = self._entries.setdefault((remote, method), _Entry())
        if entry.state == STATE_DOWN:
            return
        entry.failures = max(entry.failures, self.config.failure_threshold)
        entry.state = STATE_DOWN
        entry.down_since = self.sim.now
        self._note(remote, method, "down")
        self._recompute_next_probe()

    # -- queries -----------------------------------------------------------

    def is_down(self, remote: int, method: str) -> bool:
        """Is the method currently unusable towards ``remote``?

        A DOWN entry whose cool-off has elapsed flips to PROBE here and
        reports usable — the caller's next send is the probe.
        """
        entry = self._entries.get((remote, method))
        if entry is None or entry.state == STATE_PROBE:
            return False
        if entry.state != STATE_DOWN:
            return False
        if self.sim.now >= entry.down_since + self.config.cooloff:
            entry.state = STATE_PROBE
            self._note(remote, method, "probe")
            self._recompute_next_probe()
            return False
        return True

    def in_probe(self, remote: int, method: str) -> bool:
        entry = self._entries.get((remote, method))
        return entry is not None and entry.state == STATE_PROBE

    def down_methods(self, remote: int) -> tuple[str, ...]:
        """Methods currently down towards ``remote`` (probe transitions
        applied first, like :meth:`is_down`)."""
        down = [method for (r, method) in list(self._entries)
                if r == remote and self.is_down(remote, method)]
        return tuple(sorted(down))

    def snapshot(self) -> list[dict[str, object]]:
        """Current non-UP entries (for enquiry reports)."""
        rows = []
        for (remote, method), entry in sorted(self._entries.items()):
            rows.append({
                "remote": remote,
                "method": method,
                "state": entry.state or "degraded",
                "failures": entry.failures,
                "down_since": entry.down_since,
            })
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<HealthTracker entries={len(self._entries)} "
                f"epoch={self.epoch}>")
