"""Tests for hosts, machines, partitions, and the WAN graph."""

import pytest

from repro.simnet import LinkProfile, Network, Simulator
from repro.simnet.errors import SimnetError
from repro.util.units import mbps, milliseconds

FAST = LinkProfile("fast", latency=milliseconds(1.0), bandwidth=mbps(20.0))
SLOW = LinkProfile("slow", latency=milliseconds(30.0), bandwidth=mbps(2.0))


@pytest.fixture
def net(sim):
    return Network(sim)


class TestHost:
    def test_compute_charges_time(self, sim, net):
        machine = net.new_machine("m")
        host = machine.new_host("h")

        def body():
            yield from host.compute(1.5)

        done = sim.process(body())
        sim.run(until=done)
        assert sim.now == 1.5
        assert host.busy_time == 1.5

    def test_cpu_contention_serialises(self, sim, net):
        machine = net.new_machine("m")
        host = machine.new_host("h", cpu_capacity=1)
        log = []

        def body(name):
            yield from host.compute(1.0)
            log.append((name, sim.now))

        sim.process(body("a"))
        sim.process(body("b"))
        sim.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_zero_compute_is_free(self, sim, net):
        host = net.new_machine("m").new_host()

        def body():
            yield from host.compute(0.0)
            return sim.now

        done = sim.process(body())
        sim.run(until=done)
        assert sim.now == 0.0

    def test_negative_compute_rejected(self, sim, net):
        host = net.new_machine("m").new_host()
        with pytest.raises(ValueError):
            list(host.compute(-1.0))


class TestPartition:
    def test_membership_and_sessions(self, sim, net):
        machine = net.new_machine("sp2")
        hosts = machine.new_hosts(4)
        pa = machine.new_partition("A", hosts[:2])
        pb = machine.new_partition("B", hosts[2:])
        assert hosts[0] in pa and hosts[0] not in pb
        assert pa.session != pb.session
        assert hosts[0].same_partition(hosts[1])
        assert not hosts[0].same_partition(hosts[2])

    def test_host_cannot_join_two_partitions(self, sim, net):
        machine = net.new_machine("m")
        host = machine.new_host()
        machine.new_partition("A", [host])
        with pytest.raises(SimnetError):
            machine.new_partition("B", [host])

    def test_foreign_host_rejected(self, sim, net):
        m1 = net.new_machine("m1")
        m2 = net.new_machine("m2")
        alien = m2.new_host()
        with pytest.raises(SimnetError):
            m1.new_partition("A", [alien])


class TestNetwork:
    def test_same_machine_always_connected(self, sim, net):
        machine = net.new_machine("m")
        a, b = machine.new_hosts(2)
        assert net.ip_connected(a, b)

    def test_unconnected_machines(self, sim, net):
        a = net.new_machine("a").new_host()
        b = net.new_machine("b").new_host()
        assert not net.ip_connected(a, b)
        assert net.effective_profile("tcp", a, b) is None

    def test_direct_wan_route(self, sim, net):
        m1, m2 = net.new_machine("m1"), net.new_machine("m2")
        net.connect(m1, m2, FAST)
        route = net.wan_route(m1, m2)
        assert route is not None and len(route) == 1

    def test_multihop_picks_lowest_latency(self, sim, net):
        m1, m2, m3 = (net.new_machine(n) for n in ("m1", "m2", "m3"))
        net.connect(m1, m3, SLOW)          # direct but slow
        net.connect(m1, m2, FAST)          # two fast hops
        net.connect(m2, m3, FAST)
        route = net.wan_route(m1, m3)
        assert [link.profile.name for link in route] == ["fast", "fast"]

    def test_path_profile_collapses(self, sim, net):
        m1, m2, m3 = (net.new_machine(n) for n in ("m1", "m2", "m3"))
        net.connect(m1, m2, FAST)
        net.connect(m2, m3, SLOW)
        a, c = m1.new_host(), m3.new_host()
        profile = net.effective_profile("tcp", a, c)
        assert profile.latency == pytest.approx(FAST.latency + SLOW.latency)
        assert profile.bandwidth == SLOW.bandwidth  # bottleneck

    def test_switch_profile_for_same_machine(self, sim):
        net = Network(sim)
        machine = net.new_machine("m", {"tcp": SLOW})
        a, b = machine.new_hosts(2)
        assert net.effective_profile("tcp", a, b) is SLOW
        assert net.effective_profile("udp", a, b) is None

    def test_transport_tagged_links(self, sim, net):
        m1, m2 = net.new_machine("m1"), net.new_machine("m2")
        net.connect(m1, m2, FAST, transports=("aal5",))
        net.connect(m1, m2, SLOW, transports=("tcp",))
        a, b = m1.new_host(), m2.new_host()
        assert net.effective_profile("aal5", a, b).name == "fast"
        assert net.effective_profile("tcp", a, b).name == "slow"
        assert net.wan_route(m1, m2, "udp") is None

    def test_degrade_bumps_epoch_and_changes_profile(self, sim, net):
        m1, m2 = net.new_machine("m1"), net.new_machine("m2")
        net.connect(m1, m2, FAST)
        a, b = m1.new_host(), m2.new_host()
        before = net.effective_profile("tcp", a, b).latency
        epoch = net.epoch
        net.degrade(m1, m2, latency_factor=10.0)
        assert net.epoch == epoch + 1
        assert net.effective_profile("tcp", a, b).latency == pytest.approx(
            before * 10.0)

    def test_degrade_missing_link_rejected(self, sim, net):
        m1, m2 = net.new_machine("m1"), net.new_machine("m2")
        with pytest.raises(SimnetError):
            net.degrade(m1, m2, latency_factor=2.0)

    def test_degrade_transport_filter(self, sim, net):
        m1, m2 = net.new_machine("m1"), net.new_machine("m2")
        net.connect(m1, m2, FAST, transports=("aal5",))
        net.connect(m1, m2, SLOW, transports=("tcp",))
        a, b = m1.new_host(), m2.new_host()
        net.degrade(m1, m2, latency_factor=100.0, transport="aal5")
        assert net.effective_profile("tcp", a, b).latency == pytest.approx(
            SLOW.latency)
        assert net.effective_profile("aal5", a, b).latency == pytest.approx(
            FAST.latency * 100.0)

    def test_self_connect_rejected(self, sim, net):
        machine = net.new_machine("m")
        with pytest.raises(SimnetError):
            net.connect(machine, machine, FAST)

    def test_foreign_machine_rejected(self, sim, net):
        other_net = Network(Simulator())
        foreign = other_net.new_machine("x")
        local = net.new_machine("m")
        with pytest.raises(SimnetError):
            net.connect(local, foreign, FAST)
