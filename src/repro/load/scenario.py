"""Declarative load scenarios: client fleets over the multimethod stack.

A :class:`LoadScenario` is the full description of one synthetic
workload: which client fleets exist, how their arrivals and message
sizes are drawn (:mod:`repro.load.arrivals`), which route their RSRs
take (intra-partition MPL, inter-partition TCP/UDP, or through a
dedicated forwarding node), how the stack is tuned (``skip_poll``,
forwarding), and which faults fire while it runs.  Scenarios are plain
frozen data — :func:`repro.load.clients.run_scenario` is the engine
that executes one.

Routes
------
``"local"``
    Clients target servers inside their own SP2 partition; automatic
    selection picks MPL.
``"remote"``
    Clients target servers in the other partition; selection picks the
    inter-partition method (TCP by default, UDP when enabled and
    preferred).  With a ``placement`` naming a forwarder this traffic
    instead lands on the forwarding processor — one of the
    remote-serving ranks — and hops to the other servers over the
    placement's fast method, the paper's §4.3 alternative to tuned
    polling.  The legacy ``forwarding=True`` flag maps onto the
    equivalent placement with a ``DeprecationWarning``.
"""

from __future__ import annotations

import dataclasses
import typing as _t
import warnings

from .arrivals import ArrivalProcess, LoadSpecError, OpenLoop, SizeDist

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..place.plan import Placement
    from ..simnet.faults import FaultPlan
    from ..testbeds import SP2Testbed

ROUTE_LOCAL = "local"
ROUTE_REMOTE = "remote"
ROUTES = (ROUTE_LOCAL, ROUTE_REMOTE)

#: A builder invoked with the live testbed; returns a FaultPlan to
#: install before the fleet starts (load-under-chaos composition).
ChaosBuilder = _t.Callable[["SP2Testbed"], "FaultPlan"]


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """One homogeneous population of synthetic clients."""

    name: str
    clients: int
    arrival: ArrivalProcess
    sizes: SizeDist
    route: str = ROUTE_REMOTE
    #: Per-request service work at the server, charged through
    #: ``PollManager.busy_work``: ``service_ops`` Nexus operations (each
    #: runs the skip-decimated polling function — the paper's poll tax)
    #: plus ``service_time`` sim-seconds of pure computation.  Zero
    #: means delivery-only (a pure communication benchmark).
    service_ops: int = 0
    service_time: float = 0.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise LoadSpecError(f"fleet {self.name!r} has no clients")
        if self.route not in ROUTES:
            raise LoadSpecError(
                f"fleet {self.name!r} route must be one of {ROUTES}, "
                f"got {self.route!r}")
        if self.service_ops < 0 or self.service_time < 0:
            raise LoadSpecError(
                f"fleet {self.name!r} has negative service work")

    @property
    def open_rate(self) -> float:
        """Total offered RSRs/sim-second (0 for closed-loop fleets)."""
        if isinstance(self.arrival, OpenLoop):
            return self.clients * self.arrival.rate
        return 0.0


@dataclasses.dataclass(frozen=True)
class LoadScenario:
    """A complete, deterministic load-test description."""

    name: str
    fleets: tuple[FleetSpec, ...]
    #: Offered-load window in sim-seconds; clients stop issuing at the
    #: window's end, then the run drains.
    duration: float = 2.0
    seed: int = 0
    #: Partition-A hosts carrying client contexts.
    client_hosts: int = 2
    #: Dedicated server hosts: partition A (``local`` route targets) and
    #: partition B (``remote`` route targets).
    local_servers: int = 1
    remote_servers: int = 2
    transports: tuple[str, ...] = ("local", "mpl", "tcp")
    #: Per-method ``skip_poll`` applied to every context (the paper's
    #: tuning knob; ignored for methods a context does not poll).
    skip_poll: tuple[tuple[str, int], ...] = ()
    #: Deprecated: route remote traffic through the hand-picked §4.3
    #: forwarding processor (remote rank 0, TCP in, MPL relay).  Bare
    #: ``forwarding=True`` now maps onto the equivalent ``placement``
    #: with a :class:`DeprecationWarning`; once a placement is present
    #: this field is kept as a read-only mirror of "does the placement
    #: install a forwarder".
    forwarding: bool = False
    #: Where components sit: a :class:`repro.place.Placement` naming the
    #: forwarding rank (or ``None`` for direct routing) and the methods
    #: on each leg.  The engine consults only this field.
    placement: "Placement | None" = None
    #: Optional fault-plan builder, installed before clients start.
    chaos: ChaosBuilder | None = None
    #: Drain: after the window, wait until delivery counts have been
    #: stable for ``drain_grace`` sim-seconds, capped at ``max_drain``.
    drain_grace: float = 0.05
    max_drain: float = 2.0
    #: Windowed-telemetry resolution: the offered-load window is carved
    #: into this many fixed-interval timeline windows (the drain phase
    #: extends the timeline past the window at the same interval).
    timeline_windows: int = 24

    def __post_init__(self) -> None:
        if not self.fleets:
            raise LoadSpecError(f"scenario {self.name!r} has no fleets")
        if self.duration <= 0:
            raise LoadSpecError(f"bad duration {self.duration!r}")
        if self.timeline_windows < 1:
            raise LoadSpecError(
                f"bad timeline_windows {self.timeline_windows!r}")
        if self.client_hosts < 1 or self.remote_servers < 1:
            raise LoadSpecError(
                f"scenario {self.name!r} needs at least one client host "
                "and one remote server")
        if self.local_servers < 1 and any(
                fleet.route == ROUTE_LOCAL for fleet in self.fleets):
            raise LoadSpecError(
                f"scenario {self.name!r} has a local-route fleet but no "
                "local servers")
        names = [fleet.name for fleet in self.fleets]
        if len(set(names)) != len(names):
            raise LoadSpecError(
                f"scenario {self.name!r} has duplicate fleet names")
        if self.forwarding and self.placement is None:
            from ..place.plan import forwarding_placement

            warnings.warn(
                "LoadScenario(forwarding=True) is deprecated; pass "
                "placement=repro.place.forwarding_placement() instead",
                DeprecationWarning, stacklevel=3)
            object.__setattr__(self, "placement", forwarding_placement())
        if self.placement is not None:
            forwarder = self.placement.forwarder
            if forwarder is not None and forwarder >= self.remote_servers:
                raise LoadSpecError(
                    f"scenario {self.name!r} places the forwarder on "
                    f"remote rank {forwarder} but has only "
                    f"{self.remote_servers} remote servers")
            methods = ((self.placement.method, self.placement.fast_method)
                       if forwarder is not None else (self.placement.method,))
            for method in methods:
                if method not in self.transports:
                    raise LoadSpecError(
                        f"scenario {self.name!r} placement uses method "
                        f"{method!r} outside its transports "
                        f"{self.transports}")
            # Keep the legacy flag an honest mirror of the placement.
            object.__setattr__(self, "forwarding", forwarder is not None)

    # -- derived quantities --------------------------------------------------

    @property
    def open_rate(self) -> float:
        """Total open-loop offered rate, RSRs/sim-second."""
        return sum(fleet.open_rate for fleet in self.fleets)

    def skip_map(self) -> dict[str, int]:
        return dict(self.skip_poll)

    # -- capacity-sweep support ----------------------------------------------

    def scaled(self, factor: float) -> "LoadScenario":
        """A copy with every open-loop fleet's rate scaled by ``factor``.

        Closed-loop fleets are left untouched — they are background
        population, not swept offered load.  This is the knob the
        capacity finder (:mod:`repro.load.capacity`) bisects.
        """
        if factor <= 0:
            raise LoadSpecError(f"bad rate scale factor {factor!r}")
        fleets = tuple(
            dataclasses.replace(
                fleet,
                arrival=dataclasses.replace(
                    fleet.arrival, rate=fleet.arrival.rate * factor))
            if isinstance(fleet.arrival, OpenLoop) else fleet
            for fleet in self.fleets
        )
        return dataclasses.replace(self, fleets=fleets)

    def at_rate(self, total_rate: float) -> "LoadScenario":
        """A copy whose open-loop fleets jointly offer ``total_rate``."""
        base = self.open_rate
        if base <= 0:
            raise LoadSpecError(
                f"scenario {self.name!r} has no open-loop fleets to scale")
        return self.scaled(total_rate / base)


__all__ = [
    "ChaosBuilder",
    "FleetSpec",
    "LoadScenario",
    "ROUTES",
    "ROUTE_LOCAL",
    "ROUTE_REMOTE",
]
