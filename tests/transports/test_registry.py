"""Tests for the transport registry (module loading machinery)."""

import pytest

from repro.simnet import Network, Simulator, Tracer
from repro.simnet.random import RandomStreams
from repro.transports import (
    BUILTIN_TRANSPORTS,
    DEFAULT_TRANSPORT_SET,
    TcpTransport,
    Transport,
    TransportRegistry,
    TransportServices,
    parse_module_spec,
)
from repro.transports.errors import RegistryError


@pytest.fixture
def services():
    sim = Simulator()
    return TransportServices(sim, Network(sim), Tracer(),
                             RandomStreams(0).stream("t"))


@pytest.fixture
def registry(services):
    return TransportRegistry(services)


class TestParseModuleSpec:
    def test_commas_and_spaces(self):
        assert parse_module_spec("mpl, tcp udp") == ["mpl", "tcp", "udp"]

    def test_unknown_rejected(self):
        with pytest.raises(RegistryError):
            parse_module_spec("mpl, warp-drive")

    def test_dynamic_specs_allowed(self):
        assert parse_module_spec("pkg.mod:Cls") == ["pkg.mod:Cls"]


class TestRegistry:
    def test_enable_and_get(self, registry):
        transport = registry.enable("tcp")
        assert isinstance(transport, TcpTransport)
        assert registry.get("tcp") is transport
        assert "tcp" in registry

    def test_enable_idempotent(self, registry):
        assert registry.enable("mpl") is registry.enable("mpl")

    def test_unknown_name_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.enable("nonexistent")
        with pytest.raises(RegistryError):
            registry.get("nonexistent")

    def test_default_set_exists(self):
        for name in DEFAULT_TRANSPORT_SET:
            assert name in BUILTIN_TRANSPORTS

    def test_names_fastest_first(self, registry):
        registry.enable_all(["tcp", "mpl", "local"])
        names = registry.names()
        assert names == ["local", "mpl", "tcp"]
        ranks = [registry.get(n).speed_rank for n in names]
        assert ranks == sorted(ranks)

    def test_dynamic_load(self, registry):
        transport = registry.load("repro.transports.udp:UdpTransport")
        assert transport.name == "udp"
        assert "udp" in registry

    def test_dynamic_load_via_enable(self, registry):
        transport = registry.enable("repro.transports.myrinet:MyrinetTransport")
        assert transport.name == "myrinet"

    def test_dynamic_load_bad_specs(self, registry):
        with pytest.raises(RegistryError):
            registry.load("no.such.module:Cls")
        with pytest.raises(RegistryError):
            registry.load("repro.transports.udp:Missing")
        with pytest.raises(RegistryError):
            registry.load("repro.transports.udp")  # no class name
        with pytest.raises(RegistryError):
            registry.load("repro.simnet.engine:Simulator")  # not a Transport

    def test_custom_cost_override(self, services):
        from repro.transports.costmodels import TCP_COSTS
        registry = TransportRegistry(
            services, costs={"tcp": TCP_COSTS.replace(poll_cost=42.0)})
        assert registry.enable("tcp").poll_cost == 42.0

    def test_speed_ranks_unique(self):
        ranks = [cls.speed_rank for cls in BUILTIN_TRANSPORTS.values()]
        assert len(set(ranks)) == len(ranks)

    def test_all_builtins_are_transports(self):
        for cls in BUILTIN_TRANSPORTS.values():
            assert issubclass(cls, Transport)
            assert isinstance(cls.name, str) and cls.name
