"""The concurrent dual ping-pong benchmark (Figures 5 and 6).

"...a second microbenchmark that runs two instances of the ping-pong
program concurrently, one over MPL and the second over TCP ...  The two
programs execute until the MPL ping-pong has performed a fixed number of
roundtrips.  Then the one-way communication time of each pair is
computed.  To simulate an environment in which we have two separate SP2s
coupled by a high speed network, we place the endpoints for the TCP
communication in separate partitions."

Configuration (Figure 5): hosts a0, a1, a2 in partition A and b0 in
partition B.  The MPL pair is (a1, a2); the TCP pair is (a0, b0).  All
four contexts are multimethod (MPL + TCP) and share one ``skip_poll``
value for TCP, exactly as a global Nexus parameter would be set.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..core.buffers import Buffer
from ..core.context import Context
from ..testbeds import SP2Testbed, make_sp2


@dataclasses.dataclass(frozen=True)
class DualPingPongResult:
    """Both pairs' one-way times for one skip_poll setting."""

    size: int
    skip_poll: int
    mpl_roundtrips: int
    tcp_roundtrips: int
    elapsed: float

    @property
    def mpl_one_way(self) -> float:
        return self.elapsed / (2 * self.mpl_roundtrips)

    @property
    def tcp_one_way(self) -> float:
        if self.tcp_roundtrips == 0:
            return float("inf")
        return self.elapsed / (2 * self.tcp_roundtrips)


def dual_pingpong(size: int, skip_poll: int, *,
                  mpl_roundtrips: int = 500,
                  warmup: int = 5,
                  blocking_tcp: bool = False,
                  testbed: SP2Testbed | None = None) -> DualPingPongResult:
    """Run the two concurrent ping-pongs and measure both one-way times.

    ``skip_poll`` applies to the TCP method on all four contexts.  With
    ``blocking_tcp=True`` the TCP method is instead detected by blocking
    handlers (the Section 3.3 refinement available under AIX 4.1), and
    ``skip_poll`` is ignored for it.
    """
    bed = testbed or make_sp2(nodes_a=3, nodes_b=1)
    nexus = bed.nexus
    methods = ("local", "mpl", "tcp")
    tcp_a = nexus.context(bed.hosts_a[0], "tcp-a", methods=methods)
    mpl_a = nexus.context(bed.hosts_a[1], "mpl-a", methods=methods)
    mpl_b = nexus.context(bed.hosts_a[2], "mpl-b", methods=methods)
    tcp_b = nexus.context(bed.hosts_b[0], "tcp-b", methods=methods)
    contexts = (tcp_a, mpl_a, mpl_b, tcp_b)

    for ctx in contexts:
        if blocking_tcp:
            ctx.poll_manager.set_blocking("tcp")
        else:
            ctx.poll_manager.set_skip("tcp", skip_poll)

    counters = {ctx.id: 0 for ctx in contexts}

    def bump(ctx: Context, _ep, _buf) -> None:
        counters[ctx.id] += 1

    for ctx in contexts:
        ctx.register_handler("ball", bump)

    sp_mpl_ab = mpl_a.startpoint_to(mpl_b.new_endpoint())
    sp_mpl_ba = mpl_b.startpoint_to(mpl_a.new_endpoint())
    sp_tcp_ab = tcp_a.startpoint_to(tcp_b.new_endpoint())
    sp_tcp_ba = tcp_b.startpoint_to(tcp_a.new_endpoint())

    state: dict[str, _t.Any] = {"done": False, "tcp_roundtrips": 0,
                                "start": None, "end": 0.0}

    def payload() -> Buffer:
        return Buffer().put_padding(size)

    def mpl_side_a():
        for i in range(warmup + mpl_roundtrips):
            if i == warmup:
                state["start"] = nexus.now
            yield from sp_mpl_ab.rsr("ball", payload())
            target = i + 1
            yield from mpl_a.wait(lambda: counters[mpl_a.id] >= target)
        state["end"] = nexus.now
        state["done"] = True

    def mpl_side_b():
        i = 0
        while not state["done"]:
            target = i + 1
            yield from mpl_b.wait(
                lambda: counters[mpl_b.id] >= target or state["done"])
            if state["done"]:
                return
            yield from sp_mpl_ba.rsr("ball", payload())
            i += 1

    def tcp_side_a():
        i = 0
        while not state["done"]:
            yield from sp_tcp_ab.rsr("ball", payload())
            target = i + 1
            yield from tcp_a.wait(
                lambda: counters[tcp_a.id] >= target or state["done"])
            if counters[tcp_a.id] >= target:
                i += 1
                if state["start"] is not None and not state["done"]:
                    state["tcp_roundtrips"] += 1

    def tcp_side_b():
        i = 0
        while not state["done"]:
            target = i + 1
            yield from tcp_b.wait(
                lambda: counters[tcp_b.id] >= target or state["done"])
            if state["done"]:
                return
            yield from sp_tcp_ba.rsr("ball", payload())
            i += 1

    done = nexus.spawn(mpl_side_a(), name="dual-mpl-a")
    nexus.spawn(mpl_side_b(), name="dual-mpl-b")
    nexus.spawn(tcp_side_a(), name="dual-tcp-a")
    nexus.spawn(tcp_side_b(), name="dual-tcp-b")
    nexus.run_until(done)

    return DualPingPongResult(
        size=size,
        skip_poll=0 if blocking_tcp else skip_poll,
        mpl_roundtrips=mpl_roundtrips,
        tcp_roundtrips=max(state["tcp_roundtrips"], 1),
        elapsed=state["end"] - state["start"],
    )
