"""Two-sided message matching on top of one-sided RSRs.

This is the heart of layering MPI on Nexus: incoming ``__mpi__`` RSRs
deposit :class:`MpiMessage` envelopes into per-process matching queues;
receives either match an *unexpected* message already queued or post a
:class:`PostedRecv` that a future delivery completes.

Matching follows the MPI rules: a receive with ``(source, tag)`` — each
possibly a wildcard — matches the *earliest* queued message with the same
communicator context whose source and tag agree; posted receives are
considered in post order (non-overtaking).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .datatypes import Payload
from .errors import MatchingError
from .status import ANY_SOURCE, ANY_TAG, Status


@dataclasses.dataclass
class MpiMessage:
    """A delivered point-to-point message awaiting (or past) matching.

    Under the rendezvous protocol a message can match *before* its data
    arrives: an RTS envelope carries ``pending_token`` and no payload;
    the payload is filled in when the DATA transfer lands.
    """

    context_id: int   # communicator context (separates p2p/collective spaces)
    source: int       # sender rank in the communicator
    tag: int
    payload: Payload
    nbytes: int
    sent_at: float
    arrived_at: float
    #: Rendezvous token; None for eager messages.
    pending_token: int | None = None
    #: Sender's world rank (rendezvous only; where the CTS goes).
    sender_world: int | None = None


@dataclasses.dataclass
class PostedRecv:
    """A receive posted before its message arrived."""

    context_id: int
    source: int  # may be ANY_SOURCE
    tag: int     # may be ANY_TAG
    #: Filled in at match time.
    message: MpiMessage | None = None
    #: For rendezvous matches: set once the DATA transfer has landed.
    data_arrived: bool = False

    @property
    def complete(self) -> bool:
        if self.message is None:
            return False
        return self.message.pending_token is None or self.data_arrived

    def matches(self, message: MpiMessage) -> bool:
        if message.context_id != self.context_id:
            return False
        if self.source != ANY_SOURCE and message.source != self.source:
            return False
        if self.tag != ANY_TAG and message.tag != self.tag:
            return False
        return True

    def status(self, received_at: float) -> Status:
        if self.message is None:
            raise MatchingError("status() on an incomplete receive")
        return Status(
            source=self.message.source,
            tag=self.message.tag,
            nbytes=self.message.nbytes,
            sent_at=self.message.sent_at,
            received_at=received_at,
        )


class MatchingQueues:
    """Posted-receive and unexpected-message queues for one process."""

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[MpiMessage] = []
        self.messages_matched = 0
        self.max_unexpected = 0
        #: Peak bytes parked in the unexpected queue — the buffer-memory
        #: pressure the rendezvous protocol exists to bound.
        self.max_unexpected_bytes = 0

    # -- delivery side (called from the __mpi__ handler) ---------------------

    def deliver(self, message: MpiMessage) -> PostedRecv | None:
        """Route an arriving message: complete the earliest matching
        posted receive, or queue it as unexpected.  Returns the completed
        receive, if any."""
        for index, posted in enumerate(self.posted):
            if posted.matches(message):
                del self.posted[index]
                posted.message = message
                self.messages_matched += 1
                return posted
        self.unexpected.append(message)
        self.max_unexpected = max(self.max_unexpected, len(self.unexpected))
        parked = sum(0 if m.pending_token is not None else m.nbytes
                     for m in self.unexpected)
        self.max_unexpected_bytes = max(self.max_unexpected_bytes, parked)
        return None

    # -- receive side -----------------------------------------------------------

    def post(self, context_id: int, source: int, tag: int) -> PostedRecv:
        """Post a receive: match an unexpected message now, or enqueue.

        The returned object's ``complete`` flag is what the receive wait
        loop polls on.
        """
        posted = PostedRecv(context_id=context_id, source=source, tag=tag)
        for index, message in enumerate(self.unexpected):
            if posted.matches(message):
                del self.unexpected[index]
                posted.message = message
                self.messages_matched += 1
                return posted
        self.posted.append(posted)
        return posted

    def cancel(self, posted: PostedRecv) -> None:
        """Withdraw an incomplete posted receive."""
        if posted.complete:
            raise MatchingError("cannot cancel a matched receive")
        try:
            self.posted.remove(posted)
        except ValueError:
            raise MatchingError("receive is not posted here") from None

    def probe(self, context_id: int, source: int, tag: int
              ) -> MpiMessage | None:
        """First unexpected message that a matching receive would take
        (without removing it) — the MPI_Probe analogue."""
        probe_recv = PostedRecv(context_id=context_id, source=source, tag=tag)
        for message in self.unexpected:
            if probe_recv.matches(message):
                return message
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<MatchingQueues posted={len(self.posted)} "
                f"unexpected={len(self.unexpected)}>")
