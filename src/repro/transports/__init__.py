"""repro.transports — the communication modules of the reproduction.

Each module implements one low-level communication method behind the
common :class:`Transport` interface (the paper's function-table-accessed
communication module).  Built-ins: ``local``, ``shm``, ``mpl``,
``myrinet``, ``aal5``, ``tcp``, ``udp``, ``mcast``.  Cost models
calibrated to the paper's SP2 constants live in
:mod:`repro.transports.costmodels`.
"""

from .aal5 import Aal5Transport
from .base import (
    ContextLike,
    Descriptor,
    InTransitMessage,
    Transport,
    TransportServices,
    WireMessage,
)
from .costmodels import (
    DEFAULT_COSTS,
    DEFAULT_RUNTIME_COSTS,
    RuntimeCosts,
    TransportCosts,
)
from .errors import (
    DeliveryError,
    NotApplicableError,
    RegistryError,
    TransportError,
)
from .fastbase import FastTransport
from .ipbase import IpTransport
from .layers import (
    ChecksumLayer,
    CompressionLayer,
    FragmentationLayer,
    LayeredTransport,
    ProtocolLayer,
    make_layered,
)
from .local import LocalTransport
from .mpl import MplTransport
from .multicast import MulticastTransport
from .myrinet import MyrinetTransport
from .registry import (
    BUILTIN_TRANSPORTS,
    DEFAULT_TRANSPORT_SET,
    TransportRegistry,
    parse_module_spec,
)
from .secure import SECURE_TCP_COSTS, SecureTcpTransport
from .shm import ShmTransport
from .tcp import TcpTransport
from .udp import UdpTransport

__all__ = [
    "Aal5Transport",
    "BUILTIN_TRANSPORTS",
    "ChecksumLayer",
    "CompressionLayer",
    "ContextLike",
    "DEFAULT_COSTS",
    "DEFAULT_RUNTIME_COSTS",
    "DEFAULT_TRANSPORT_SET",
    "DeliveryError",
    "Descriptor",
    "FastTransport",
    "FragmentationLayer",
    "InTransitMessage",
    "IpTransport",
    "LayeredTransport",
    "LocalTransport",
    "MplTransport",
    "MulticastTransport",
    "MyrinetTransport",
    "NotApplicableError",
    "ProtocolLayer",
    "RegistryError",
    "RuntimeCosts",
    "SECURE_TCP_COSTS",
    "SecureTcpTransport",
    "ShmTransport",
    "TcpTransport",
    "Transport",
    "TransportCosts",
    "TransportError",
    "TransportRegistry",
    "TransportServices",
    "UdpTransport",
    "WireMessage",
    "make_layered",
    "parse_module_spec",
]
