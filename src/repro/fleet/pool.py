"""A spawn-based worker pool for independent simulation tasks.

The pool is deliberately *declarative*: a :class:`FleetTask` carries a
task **key**, the **name** of a registered runner (or a
``"module:callable"`` dotted path importable in the worker), and a
plain-data **payload** of keyword arguments.  Nothing live — no open
runtimes, no queues, no bound methods — ever crosses the process
boundary; workers rebuild everything from the declarative spec, which
is what keeps a fleet run a pure function of its task list.

Robustness contract:

* every result and every failure comes back **tagged by task key**, so
  callers can merge outputs in deterministic key order regardless of
  completion order;
* an exception inside a runner is caught in the worker and surfaced as
  a structured :class:`FleetTaskError` carrying the task key, the
  remote exception type, and the full remote traceback text — never a
  bare hang;
* a worker that dies outright (``os._exit``, OOM-kill, segfault) is
  reaped: its in-flight task errors with the exit code, surviving
  workers keep draining the queue, and if *every* worker is gone the
  still-queued tasks error out instead of deadlocking the parent;
* results are pre-pickled inside the worker so an unpicklable return
  value becomes an ordinary per-task error instead of a mid-send
  crash.

Results travel over a **private pipe per worker**, written
synchronously from the worker's main thread — never a shared queue.  A
shared result queue puts a feeder thread and a shared write lock
between every worker and the parent, and a worker dying mid-send
(``os._exit`` fires while its feeder holds the lock) poisons the lock
and silently hangs every *surviving* worker's results.  With private
pipes a crash can only sever the crashing worker's own channel, which
the parent observes as an immediate EOF — crash detection is
event-driven, not a liveness poll.

``spawn`` (not ``fork``) is used unconditionally: forked children would
inherit the parent's live simulators, RNG state, and open spool file
handles — exactly the implicit state this layer exists to exclude.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import pickle
import traceback
import typing as _t

#: How long the collector's ``connection.wait`` sleeps before checking
#: worker liveness again (seconds).  EOFs wake it immediately; this is
#: only the heartbeat for the belt-and-braces ``is_alive`` sweep.
_REAP_INTERVAL_S = 0.25

#: Parent-side join grace before a lingering worker is terminated.
_JOIN_TIMEOUT_S = 5.0


class FleetSpecError(ValueError):
    """A task spec is malformed (bad key, duplicate, unpicklable)."""


class FleetTaskError(Exception):
    """One task failed in a worker; carries the remote evidence.

    ``remote_traceback`` is the worker-side ``traceback.format_exc()``
    text (or a synthesized note for hard crashes), so the parent can
    print exactly what the worker saw without re-raising a foreign
    exception type.
    """

    def __init__(self, key: str, exc_type: str, message: str,
                 remote_traceback: str):
        super().__init__(f"fleet task {key!r} failed: "
                         f"{exc_type}: {message}")
        self.key = key
        self.exc_type = exc_type
        self.message = message
        self.remote_traceback = remote_traceback


@dataclasses.dataclass(frozen=True)
class FleetTask:
    """One declarative unit of work.

    ``runner`` names a callable in :data:`repro.fleet.tasks.RUNNERS`
    or a ``"package.module:function"`` path the worker can import;
    ``payload`` is the keyword arguments it receives.  Both must be
    picklable plain data — see the "what must never be pickled" rules
    in ARCHITECTURE.md.
    """

    key: str
    runner: str
    payload: _t.Mapping[str, object] = dataclasses.field(
        default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise FleetSpecError("fleet task key must be non-empty")
        if not self.runner:
            raise FleetSpecError(f"task {self.key!r} names no runner")

    def encode(self) -> bytes:
        """The wire form; raises :class:`FleetSpecError` eagerly."""
        try:
            return pickle.dumps((self.runner, dict(self.payload)),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise FleetSpecError(
                f"task {self.key!r} payload is not picklable — task "
                f"specs must be declarative plain data ({exc})") from exc


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """What one task produced: a result, or a structured error."""

    key: str
    result: object = None
    error: FleetTaskError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _check_unique(tasks: _t.Sequence[FleetTask]) -> None:
    seen: set[str] = set()
    for task in tasks:
        if task.key in seen:
            raise FleetSpecError(f"duplicate fleet task key {task.key!r}")
        seen.add(task.key)


# -- worker side --------------------------------------------------------------

def _worker_main(index: int, task_queue, conn) -> None:
    """Worker loop: ack, run, report.  Lives in the spawned child.

    ``conn`` is this worker's private pipe end; every send happens
    synchronously from this thread, so a hard crash can never leave a
    half-held shared lock behind.
    """
    from .tasks import resolve_runner

    while True:
        item = task_queue.get()
        if item is None:
            conn.close()
            return
        key, blob = item
        # Ack *before* any work so the parent can pin a hard crash to
        # this task; the window where a death loses a task silently is
        # one queue.get().
        conn.send(("ack", key, index))
        try:
            runner_name, payload = pickle.loads(blob)
            fn = resolve_runner(runner_name)
            result = fn(**payload)
            out = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:  # noqa: BLE001 - must report, not die
            conn.send(("err", key, type(exc).__name__, str(exc),
                       traceback.format_exc()))
        else:
            conn.send(("ok", key, out))


# -- parent side --------------------------------------------------------------

class FleetPool:
    """A persistent pool of spawned workers; a context manager.

    Use :meth:`run` for a batch (results keyed and key-ordered), or
    :meth:`submit` + :meth:`as_completed` to stream outcomes as they
    finish.  The pool survives multiple batches — the parallel capacity
    search reuses one pool across bisection rounds.
    """

    def __init__(self, workers: int, *, name: str = "fleet"):
        if workers < 1:
            raise FleetSpecError(f"pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.name = name
        self._ctx = multiprocessing.get_context("spawn")
        self._tasks: "multiprocessing.Queue | None" = None
        self._conns: dict[int, _t.Any] = {}   # worker index -> read end
        self._procs: list = []
        self._pending: dict[str, FleetTask] = {}
        self._started: dict[str, int] = {}   # key -> worker index
        self._reaped: set[int] = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetPool":
        if self._procs:
            return self
        self._tasks = self._ctx.Queue()
        for index in range(self.workers):
            receive, send = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(index, self._tasks, send),
                name=f"{self.name}-worker-{index}",
                daemon=True,
            )
            proc.start()
            # Drop the parent's copy of the write end: the worker now
            # holds the only one, so its death reads as EOF here.
            send.close()
            self._conns[index] = receive
            self._procs.append(proc)
        return self

    def __enter__(self) -> "FleetPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._tasks is not None:
            for _ in self._procs:
                try:
                    self._tasks.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown
                    break
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()
        if self._tasks is not None:
            self._tasks.close()
            self._tasks.cancel_join_thread()
        self._tasks = None

    # -- submission & collection ---------------------------------------------

    def submit(self, task: FleetTask) -> None:
        """Queue one task; encodes (and so validates) it eagerly."""
        if self._closed:
            raise FleetSpecError("pool is closed")
        if task.key in self._pending:
            raise FleetSpecError(f"duplicate fleet task key {task.key!r}")
        blob = task.encode()
        self.start()
        assert self._tasks is not None
        self._pending[task.key] = task
        self._tasks.put((task.key, blob))

    def as_completed(self) -> _t.Iterator[TaskOutcome]:
        """Yield an outcome per pending task, in completion order.

        Never deadlocks: a dead worker's severed pipe is an immediate
        EOF that reaps its in-flight task into a crash outcome, and if
        the whole pool dies the remaining queued tasks error out.
        """
        while self._pending:
            live = {index: conn for index, conn in self._conns.items()
                    if index not in self._reaped}
            if not live:
                yield from self._exhausted()
                return
            ready = multiprocessing.connection.wait(
                list(live.values()), timeout=_REAP_INTERVAL_S)
            if not ready:
                # Heartbeat sweep: catches a worker that died before
                # its pipe was even set up.
                yield from self._reap_if_dead(
                    index for index, proc in enumerate(self._procs)
                    if not proc.is_alive())
                continue
            by_conn = {id(conn): index for index, conn in live.items()}
            for conn in ready:
                index = by_conn[id(conn)]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    yield from self._reap_if_dead([index])
                    continue
                yield from self._dispatch(message)

    def _dispatch(self, message) -> _t.Iterator[TaskOutcome]:
        kind = message[0]
        if kind == "ack":
            _kind, key, index = message
            self._started[key] = index
        elif kind == "ok":
            _kind, key, blob = message
            self._started.pop(key, None)
            if self._pending.pop(key, None) is not None:
                yield TaskOutcome(key=key, result=pickle.loads(blob))
        elif kind == "err":
            _kind, key, exc_type, text, tb = message
            self._started.pop(key, None)
            if self._pending.pop(key, None) is not None:
                yield TaskOutcome(key=key, error=FleetTaskError(
                    key, exc_type, text, tb))
        # anything else: ignore (forward compatibility)

    def _reap_if_dead(self, indices: _t.Iterable[int]
                      ) -> _t.Iterator[TaskOutcome]:
        """Turn dead workers' in-flight tasks into crash outcomes."""
        for index in indices:
            if index in self._reaped:
                continue
            proc = self._procs[index]
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - EOF without death
                continue
            self._reaped.add(index)
            for key, owner in list(self._started.items()):
                if owner != index:
                    continue
                del self._started[key]
                if self._pending.pop(key, None) is not None:
                    yield TaskOutcome(key=key, error=FleetTaskError(
                        key, "WorkerCrash",
                        f"worker {index} died with exit code "
                        f"{proc.exitcode} while running this task",
                        f"(no remote traceback: worker process {index} "
                        f"terminated with exit code {proc.exitcode})"))
        if self._pending and len(self._reaped) == len(self._procs):
            yield from self._exhausted()

    def _exhausted(self) -> _t.Iterator[TaskOutcome]:
        """The whole pool is gone; queued tasks can never run."""
        for key in sorted(self._pending):
            self._pending.pop(key)
            yield TaskOutcome(key=key, error=FleetTaskError(
                key, "PoolExhausted",
                "every worker died before this task started",
                "(no remote traceback: the task was still queued)"))

    def run(self, tasks: _t.Sequence[FleetTask]
            ) -> dict[str, TaskOutcome]:
        """Submit a batch and collect every outcome, key-ordered."""
        tasks = tuple(tasks)
        _check_unique(tasks)
        for task in tasks:
            self.submit(task)
        outcomes = {outcome.key: outcome for outcome in self.as_completed()}
        return {key: outcomes[key] for key in sorted(outcomes)}


def run_serial(tasks: _t.Sequence[FleetTask]) -> dict[str, TaskOutcome]:
    """Execute tasks in-process, in submission order; key-ordered result.

    The ``--jobs 1`` path: same task specs, same runners, same outcome
    shape — no processes.  Exceptions become :class:`FleetTaskError`s
    exactly as they would across the wire, so error handling is
    identical in both modes.
    """
    from .tasks import resolve_runner

    tasks = tuple(tasks)
    _check_unique(tasks)
    outcomes: dict[str, TaskOutcome] = {}
    for task in tasks:
        task.encode()  # enforce the same declarative contract as spawn
        try:
            fn = resolve_runner(task.runner)
            result = fn(**dict(task.payload))
        except Exception as exc:
            outcomes[task.key] = TaskOutcome(
                key=task.key, error=FleetTaskError(
                    task.key, type(exc).__name__, str(exc),
                    traceback.format_exc()))
        else:
            outcomes[task.key] = TaskOutcome(key=task.key, result=result)
    return {key: outcomes[key] for key in sorted(outcomes)}


__all__ = [
    "FleetPool",
    "FleetSpecError",
    "FleetTask",
    "FleetTaskError",
    "TaskOutcome",
    "run_serial",
]
