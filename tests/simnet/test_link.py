"""Tests for link profiles and pipes."""

import pytest

from repro.simnet import LinkProfile, Pipe, RandomStreams, Store
from repro.simnet.errors import SimnetError
from repro.util.units import MB, mbps, milliseconds


def profile(**overrides):
    defaults = dict(name="test", latency=milliseconds(1.0),
                    bandwidth=mbps(10.0))
    defaults.update(overrides)
    return LinkProfile(**defaults)


class TestLinkProfile:
    def test_serialization_time(self):
        p = profile(bandwidth=mbps(10.0))
        assert p.serialization_time(10 * MB) == pytest.approx(1.0)
        assert p.serialization_time(0) == 0.0

    def test_one_way_time(self):
        p = profile()
        assert p.one_way_time(10 * MB) == pytest.approx(
            milliseconds(1.0) + 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(SimnetError):
            profile().serialization_time(-1)

    def test_validation(self):
        with pytest.raises(SimnetError):
            profile(latency=-1.0)
        with pytest.raises(SimnetError):
            profile(bandwidth=0.0)
        with pytest.raises(SimnetError):
            profile(drop_probability=1.5)

    def test_scaled(self):
        p = profile().scaled(latency_factor=2.0, bandwidth_factor=0.5)
        assert p.latency == pytest.approx(milliseconds(2.0))
        assert p.bandwidth == pytest.approx(mbps(5.0))


class TestPipe:
    def test_delivery_time(self, sim):
        inbox = Store(sim)
        pipe = Pipe(sim, profile(), inbox.put)
        got = {}

        def sender():
            yield from pipe.send("payload", 10 * MB)

        def receiver():
            delivery = yield inbox.get()
            got["at"] = sim.now
            got["delivery"] = delivery

        done = sim.process(receiver())
        sim.process(sender())
        sim.run(until=done)
        # serialization 1 s + latency 1 ms
        assert got["at"] == pytest.approx(1.0 + milliseconds(1.0))
        assert got["delivery"].payload == "payload"
        assert got["delivery"].nbytes == 10 * MB

    def test_serialization_queues_but_latency_pipelines(self, sim):
        inbox = Store(sim)
        pipe = Pipe(sim, profile(), inbox.put)
        arrivals = []

        def sender():
            yield from pipe.send("a", 10 * MB)

        def sender2():
            yield from pipe.send("b", 10 * MB)

        def receiver():
            for _ in range(2):
                delivery = yield inbox.get()
                arrivals.append((delivery.payload, sim.now))

        done = sim.process(receiver())
        sim.process(sender())
        sim.process(sender2())
        sim.run(until=done)
        assert arrivals[0] == ("a", pytest.approx(1.0 + 1e-3))
        assert arrivals[1] == ("b", pytest.approx(2.0 + 1e-3))

    def test_lossy_pipe_drops(self, sim):
        rng = RandomStreams(7).stream("pipe")
        inbox = Store(sim)
        pipe = Pipe(sim, profile(drop_probability=0.5), inbox.put, rng=rng)

        def sender():
            for _ in range(200):
                yield from pipe.send("x", 1)

        sim.process(sender())
        sim.run()
        assert pipe.messages_sent == 200
        assert 40 < pipe.messages_dropped < 160
        assert len(inbox) == 200 - pipe.messages_dropped

    def test_lossy_pipe_requires_rng(self, sim):
        pipe = Pipe(sim, profile(drop_probability=0.5), lambda d: None)

        def sender():
            yield from pipe.send("x", 1)

        sim.process(sender())
        with pytest.raises(SimnetError, match="rng"):
            sim.run()

    def test_stats(self, sim):
        inbox = Store(sim)
        pipe = Pipe(sim, profile(), inbox.put)

        def sender():
            yield from pipe.send("x", 1000)
            yield from pipe.send("y", 500)

        sim.process(sender())
        sim.run()
        assert pipe.messages_sent == 2
        assert pipe.bytes_sent == 1500
