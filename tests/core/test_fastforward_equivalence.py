"""The idle fast-forward must be semantically invisible.

``PollManager.wait`` skips ahead through idle stretches, charging the
spin iterations in aggregate.  These tests pin the equivalence against a
brute-force waiter that really executes every poll cycle: for random
arrival times and skip settings, both must detect the message at (very
nearly) the same virtual time and with equivalent counter state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import Buffer
from repro.testbeds import make_sp2


def brute_force_wait(ctx, predicate):
    """A wait loop with no fast-forward: every cycle really runs."""
    nexus = ctx.nexus
    loop_cost = nexus.runtime_costs.poll_loop_cost
    while True:
        if predicate():
            return
        yield from ctx.poll_manager.poll()
        if predicate():
            return
        yield from ctx.charge(loop_cost)


def run_one(skip, delay_us, use_fast_forward, nbytes=0):
    """One cross-partition message arriving after ``delay_us``; returns
    (detection time, tcp fires)."""
    bed = make_sp2(nodes_a=1, nodes_b=1)
    nexus = bed.nexus
    a = nexus.context(bed.hosts_a[0])
    b = nexus.context(bed.hosts_b[0])
    b.poll_manager.set_skip("tcp", skip)
    log = []
    b.register_handler("h", lambda c, e, buf: log.append(nexus.now))
    sp = a.startpoint_to(b.new_endpoint())

    def sender():
        yield nexus.sim.timeout(delay_us * 1e-6)
        yield from sp.rsr("h", Buffer().put_padding(nbytes))

    def receiver():
        if use_fast_forward:
            yield from b.wait(lambda: bool(log))
        else:
            yield from brute_force_wait(b, lambda: bool(log))
        return nexus.now

    done = nexus.spawn(receiver())
    nexus.spawn(sender())
    detected = nexus.run(until=done)
    return detected, b.poll_manager.stats.fires.get("tcp", 0)


@given(st.sampled_from([1, 2, 3, 7, 20, 50]),
       st.integers(min_value=0, max_value=30_000))
@settings(max_examples=25, deadline=None)
def test_fast_forward_matches_brute_force(skip, delay_us):
    fast_time, fast_fires = run_one(skip, delay_us, True)
    slow_time, slow_fires = run_one(skip, delay_us, False)
    # Detection times agree to within one skip-decimated detection
    # quantum: the aggregate accounting may round the final partial
    # firing window by up to ``skip`` wait-loop cycles (~18 us each).
    quantum = 2e-4 + skip * 20e-6
    assert fast_time == pytest.approx(slow_time, abs=quantum)
    # The skip counters saw an equivalent number of TCP fires.
    assert fast_fires == pytest.approx(slow_fires, abs=2)


@given(st.sampled_from([1, 5, 20]),
       st.integers(min_value=0, max_value=64) )
@settings(max_examples=15, deadline=None)
def test_fast_forward_equivalence_with_payload(skip, kb):
    """Same equivalence when the drain model is in play (MPL payload)."""
    fast_time, _ = run_one(skip, 500, True, nbytes=kb * 1024)
    slow_time, _ = run_one(skip, 500, False, nbytes=kb * 1024)
    assert fast_time == pytest.approx(slow_time, abs=2e-4 + skip * 20e-6)


def test_fast_forward_is_dramatically_cheaper():
    """The point of the optimisation: far fewer engine events for a long
    idle wait, with the same virtual-time answer."""
    # ~50 ms wait at ~126 us/cycle ~ 400 cycles
    fast_time, _ = run_one(1, 50_000, True)
    slow_time, _ = run_one(1, 50_000, False)
    assert fast_time == pytest.approx(slow_time, abs=3e-4)
