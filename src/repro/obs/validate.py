"""Validate repro JSON artefacts (``python -m repro.obs.validate``).

Sniffs the document type and applies the matching contract:

**Chrome trace-event exports** — the subset of the trace-event format
Perfetto relies on, plus this repo's own guarantees:

* top-level object with a ``traceEvents`` list;
* every event has ``ph``/``name``/``pid``/``tid``; complete ("X")
  events also carry numeric ``ts`` and ``dur``;
* span events carry causal ``args.rsr`` ids, and at least one traced
  RSR exhibits the four headline phases (marshal, wire, poll_detect,
  dispatch);
* the embedded ``metrics`` section contains per-method RSR latency
  histograms whose bucket counts sum to their sample counts;
* as the one exception, an export that *declares itself empty*
  (``otherData.spans == 0``, e.g. ``--trace`` over a run that built no
  Nexus) is valid with no events and no histograms.

**Bench records** (``schema == "repro.bench.record"``, written by
``python -m repro.bench --record``) — the full structural contract from
:func:`repro.bench.record.validate_record_document`, plus load-tier
checks when the record carries a ``load`` artefact: every scenario must
publish its SLO verdict (``<scenario>.slo_passed``) alongside the
counters the verdict was judged from (offered/delivered, p50/p99), the
delivered count may not exceed the offered count, and every capacity
search must publish both its rate and its probe count.

Used by the CI smoke jobs and the test suite; exits non-zero with a
reason on the first violation.
"""

from __future__ import annotations

import json
import sys
import typing as _t

REQUIRED_PHASES = ("marshal", "wire", "poll_detect", "dispatch")


class TraceValidationError(ValueError):
    """The document violates the trace-event contract."""


def _fail(reason: str) -> "_t.NoReturn":
    raise TraceValidationError(reason)


def validate_trace_document(document: object) -> dict[str, object]:
    """Validate one exported document; returns summary statistics."""
    if not isinstance(document, dict):
        _fail(f"top level must be an object, got {type(document).__name__}")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        _fail("traceEvents must be a list")
    if not events:
        # Valid only for an empty-by-construction export (zero collected
        # runs / zero spans): the document must say so itself.
        other = document.get("otherData")
        if not isinstance(other, dict) or other.get("spans") != 0:
            _fail("traceEvents empty but otherData does not declare "
                  "zero spans")
        if not isinstance(document.get("metrics"), dict):
            _fail("metrics section missing")
        return {"events": 0, "span_events": 0, "rsrs": 0,
                "full_lifecycles": 0, "latency_histograms": 0}

    phases_by_rsr: dict[tuple[object, object], set[str]] = {}
    span_events = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(f"traceEvents[{index}] is not an object")
        for field in ("ph", "name", "pid", "tid"):
            if field not in event:
                _fail(f"traceEvents[{index}] missing {field!r}")
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            _fail(f"traceEvents[{index}] has unexpected ph={event['ph']!r}")
        for field in ("ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                _fail(f"traceEvents[{index}].{field} must be numeric")
        if _t.cast(float, event["dur"]) < 0:
            _fail(f"traceEvents[{index}] has negative duration")
        args = event.get("args")
        if not isinstance(args, dict) or "rsr" not in args:
            _fail(f"traceEvents[{index}] span lacks args.rsr causal id")
        span_events += 1
        # RSR ids are unique within a pid block (one block per run).
        run_block = _t.cast(int, event["pid"]) // 1000
        phases_by_rsr.setdefault((run_block, args["rsr"]), set()).add(
            _t.cast(str, event["name"]))

    if span_events == 0:
        _fail("no span ('X') events present")
    full_lifecycles = sum(
        1 for phases in phases_by_rsr.values()
        if all(phase in phases for phase in REQUIRED_PHASES))
    if full_lifecycles == 0:
        _fail(f"no RSR carries all required phases {REQUIRED_PHASES}")

    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        _fail("metrics section missing")
    flat: list[_t.Mapping[str, object]] = []
    stack: list[object] = [metrics]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            if "rsr_latency_us" in node:
                flat.extend(_t.cast(list, node["rsr_latency_us"]))
            else:
                stack.extend(node.values())
    if not flat:
        _fail("metrics contain no rsr_latency_us histograms")
    for snapshot in flat:
        counts = _t.cast(list, snapshot["counts"])
        if sum(counts) != snapshot["count"]:
            _fail("latency histogram bucket counts do not sum to count")
        if "method" not in _t.cast(dict, snapshot["labels"]):
            _fail("latency histogram lacks a method label")

    return {
        "events": len(events),
        "span_events": span_events,
        "rsrs": len(phases_by_rsr),
        "full_lifecycles": full_lifecycles,
        "latency_histograms": len(flat),
    }


def validate_trace_file(path: str) -> dict[str, object]:
    with open(path) as handle:
        document = json.load(handle)
    return validate_trace_document(document)


#: Counters every load scenario must publish next to its SLO verdict.
LOAD_SCENARIO_METRICS = ("offered", "delivered", "delivered_rate",
                         "p50_us", "p99_us")


def validate_load_record(document: _t.Mapping[str, object]
                         ) -> dict[str, object]:
    """Load-tier checks over an already structurally-valid bench record.

    A record without a ``load`` artefact passes trivially (zero
    scenarios); one *with* it must carry complete SLO-judged scenarios
    and complete capacity searches.
    """
    artefacts = _t.cast(dict, document.get("artefacts", {}))
    load = artefacts.get("load")
    if load is None:
        return {"load_scenarios": 0, "capacity_searches": 0}
    metrics = _t.cast(dict, _t.cast(dict, load)["metrics"])

    scenarios = sorted(name[: -len(".slo_passed")] for name in metrics
                       if name.endswith(".slo_passed"))
    if not scenarios:
        _fail("load artefact present but no <scenario>.slo_passed metrics")
    for scenario in scenarios:
        for suffix in LOAD_SCENARIO_METRICS:
            if f"{scenario}.{suffix}" not in metrics:
                _fail(f"load scenario {scenario!r} lacks {suffix}")
        offered = _t.cast(dict, metrics[f"{scenario}.offered"])["value"]
        delivered = _t.cast(dict, metrics[f"{scenario}.delivered"])["value"]
        if delivered > offered:
            _fail(f"load scenario {scenario!r} delivered {delivered} "
                  f"> offered {offered}")

    searches = sorted({name.split(".")[1] for name in metrics
                       if name.startswith("capacity.")})
    for search in searches:
        for suffix in ("rate", "probes"):
            if f"capacity.{search}.{suffix}" not in metrics:
                _fail(f"capacity search {search!r} lacks {suffix}")

    return {"load_scenarios": len(scenarios),
            "capacity_searches": len(searches)}


def validate_file(path: str) -> tuple[str, dict[str, object]]:
    """Sniff ``path`` and validate it; returns (document kind, summary)."""
    from ..bench.record import SCHEMA, validate_record_document

    with open(path) as handle:
        document = json.load(handle)
    if isinstance(document, dict) and document.get("schema") == SCHEMA:
        summary = validate_record_document(document)
        summary.update(validate_load_record(document))
        return "record", summary
    return "trace", validate_trace_document(document)


def main(argv: _t.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE_OR_RECORD.json",
              file=sys.stderr)
        return 2
    try:
        kind, summary = validate_file(argv[0])
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    if kind == "record":
        print(f"OK: bench record with {summary['metrics']} metrics "
              f"across {summary['artefacts']} artefacts, "
              f"{summary['load_scenarios']} load scenarios, "
              f"{summary['capacity_searches']} capacity searches")
    else:
        print(f"OK: {summary['span_events']} spans over "
              f"{summary['rsrs']} RSRs "
              f"({summary['full_lifecycles']} full lifecycles), "
              f"{summary['latency_histograms']} latency histograms")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
