"""Bench-run history: an append-only JSONL ledger of wall-tier records.

A single wall-clock run is a noisy sample; CI machines jitter by tens
of percent.  Instead of widening the fixed tolerance until the gate is
toothless, ``--append-history PATH`` accumulates every wall-tier record
as one JSON line, and :func:`wall_bands` turns the accumulated runs
into per-metric acceptance bands — ``median ± k * IQR`` over the
history, floored at a small relative width so a perfectly stable metric
does not gate on scheduler noise.  ``compare_records`` then gates wall
metrics against their band instead of the flat ``--wall-tolerance``.

The ledger is plain JSONL so it survives partial writes (a truncated
trailing line is skipped, not fatal) and diffs/greps cleanly.
"""

from __future__ import annotations

import json
import math
import os
import typing as _t

from .record import KIND_WALL

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Bands need this many historical runs before they gate; below it the
#: spread estimate is meaningless and the flat tolerance applies.
MIN_RUNS = 5

#: Band half-width: ``k * IQR``, floored at ``REL_FLOOR * |median|``.
DEFAULT_K = 3.0
REL_FLOOR = 0.05


def append_history(path: str, document: _t.Mapping[str, object]) -> None:
    """Append one record document as a single compact JSON line.

    Safe under concurrent writers (parallel fleet tasks appending to a
    shared ledger): the whole line is serialised first, the descriptor
    is opened ``O_APPEND``, an exclusive ``flock`` is held for the
    write, and the line goes out in a **single** ``os.write`` — so two
    appenders can interleave whole lines but never fragments of them.
    On filesystems without ``flock`` the single atomic append write is
    still the interleaving guarantee.
    """
    data = (json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                pass  # lock-free filesystem: O_APPEND still holds
        os.write(fd, data)
    finally:
        os.close(fd)


def load_history(path: str) -> list[dict[str, object]]:
    """Load every parseable record line (skipping truncated tails)."""
    records: list[dict[str, object]] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(document, dict) and "artefacts" in document:
                    records.append(document)
    except OSError:
        return []
    return records


def _wall_samples(history: _t.Sequence[_t.Mapping[str, object]]
                  ) -> dict[tuple[str, str], list[float]]:
    samples: dict[tuple[str, str], list[float]] = {}
    for document in history:
        artefacts = document.get("artefacts")
        if not isinstance(artefacts, dict):
            continue
        for artefact, body in artefacts.items():
            metrics = body.get("metrics", {})
            for name, metric in metrics.items():
                if metric.get("kind") != KIND_WALL:
                    continue
                value = metric.get("value")
                if isinstance(value, (int, float)) and math.isfinite(value):
                    samples.setdefault((artefact, name),
                                       []).append(float(value))
    return samples


def _median(values: _t.Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _quartiles(values: _t.Sequence[float]) -> tuple[float, float]:
    ordered = sorted(values)
    mid = len(ordered) // 2
    lower = ordered[:mid]
    upper = ordered[mid + (len(ordered) % 2):]
    return _median(lower), _median(upper)


def wall_bands(history: _t.Sequence[_t.Mapping[str, object]], *,
               k: float = DEFAULT_K, min_runs: int = MIN_RUNS
               ) -> dict[tuple[str, str], tuple[float, float]]:
    """Per-metric ``(lo, hi)`` acceptance bands from accumulated runs.

    ``median ± k * max(IQR, REL_FLOOR * |median|)`` per wall metric with
    at least ``min_runs`` samples; metrics with fewer samples get no
    band (the caller's flat tolerance applies to them).
    """
    bands: dict[tuple[str, str], tuple[float, float]] = {}
    for key, values in _wall_samples(history).items():
        if len(values) < min_runs:
            continue
        median = _median(values)
        q1, q3 = _quartiles(values)
        half = k * max(q3 - q1, REL_FLOOR * abs(median))
        bands[key] = (median - half, median + half)
    return bands


__all__ = [
    "DEFAULT_K",
    "MIN_RUNS",
    "REL_FLOOR",
    "append_history",
    "load_history",
    "wall_bands",
]
