#!/usr/bin/env python
"""Fortran M-style channel programming over multimethod links.

Fortran M (the paper's reference [14]) was implemented on Nexus; its
channels map directly onto communication links: an outport is a
startpoint, an inport is an endpoint, and FM's merger is the paper's
endpoint merging.  This example builds a three-stage pipeline across
both SP2 partitions and then a many-to-one merger fed over *different
methods* (MPL from inside the partition, TCP from outside) — one reader,
one channel, two transports.

Run:  python examples/fortran_m_pipeline.py
"""

from repro import make_sp2
from repro.fm import ChannelClosed, OutPort, channel


def main() -> None:
    bed = make_sp2(nodes_a=2, nodes_b=1)
    nexus = bed.nexus
    sink_ctx = nexus.context(bed.hosts_a[0], "sink")
    stage_ctx = nexus.context(bed.hosts_a[1], "stage")
    source_ctx = nexus.context(bed.hosts_b[0], "source")

    to_sink, sink_in = channel(sink_ctx)
    to_stage, stage_in = channel(stage_ctx)
    ports = {}

    def setup():
        ports["source"] = yield from OutPort.from_wire(
            to_stage.to_wire(), source_ctx)
        while stage_in.writers_opened < 2:
            yield nexus.sim.timeout(0.001)
        yield from to_stage.close()

    def source():
        yield nexus.sim.timeout(0.02)
        for value in range(6):
            yield from ports["source"].send(value)
        yield from ports["source"].close()
        print(f"source: sent 0..5 over {ports['source'].method} "
              "(cross-partition)")

    def stage():
        while True:
            try:
                value = yield from stage_in.receive()
            except ChannelClosed:
                break
            yield from to_sink.send(value * value)
        yield from to_sink.close()
        print("stage: squared everything, channel closed")

    def sink():
        values = yield from sink_in.receive_all()
        print(f"sink: received {values}")

    nexus.run_until(setup(), source(), stage(), sink())

    print("\n--- merger: one inport, writers on two transports ---")
    merged_out, merged_in = channel(sink_ctx)
    state = {}

    def merger_setup():
        state["near"] = yield from OutPort.from_wire(merged_out.to_wire(),
                                                     stage_ctx)
        state["far"] = yield from OutPort.from_wire(merged_out.to_wire(),
                                                    source_ctx)
        yield from merged_out.close()

    def writer(key, values):
        yield nexus.sim.timeout(0.02)
        for value in values:
            yield from state[key].send(value)
        yield from state[key].close()

    def reader():
        values = yield from merged_in.receive_all()
        print(f"merged stream: {values}")
        print(f"  near writer used {state['near'].method}, "
              f"far writer used {state['far'].method}")

    nexus.run_until(merger_setup(), writer("near", ["n1", "n2", "n3"]),
                    writer("far", ["f1", "f2"]), reader())


if __name__ == "__main__":
    main()
