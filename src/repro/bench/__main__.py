"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # everything
    python -m repro.bench figure4         # one artefact
    python -m repro.bench table1 --quick  # reduced workload sizes
    python -m repro.bench --list

The pytest benchmarks (`pytest benchmarks/ --benchmark-only`) are the
canonical gate (they also assert the shape criteria); this entry point
is for interactive exploration and for regenerating EXPERIMENTS.md
numbers without pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing as _t

from .. import obs as _obs
from .ablations import (
    ablation_adaptive_skip,
    ablation_blocking_poll,
    ablation_lightweight_startpoints,
    ablation_mpi_layering,
    ablation_rendezvous,
)
from .figure4 import check_figure4_shape, figure4
from .figure6 import check_figure6_shape, figure6
from .table1 import check_table1_shape, table1


def _run_figure4(quick: bool) -> None:
    fig = figure4(roundtrips=30 if quick else 100)
    print(fig.render())
    print()
    print(fig.render_charts())
    if not quick:  # quick runs quantise too coarsely to assert shapes
        check_figure4_shape(fig)
        print("shape: OK")


def _run_figure6(quick: bool) -> None:
    fig = figure6(mpl_roundtrips=150 if quick else 400)
    print(fig.render())
    print()
    print(fig.render_charts())
    if not quick:
        check_figure6_shape(fig)
        print("shape: OK")


def _run_table1(quick: bool) -> None:
    config = None
    if quick:
        import dataclasses

        from ..apps.climate import ClimateConfig
        config = dataclasses.replace(ClimateConfig(), steps=2)
    result = table1(config=config)
    print(result.render())
    if not quick:
        check_table1_shape(result)
        print("shape: OK")


def _run_ablations(quick: bool) -> None:
    blocking = ablation_blocking_poll(
        mpl_roundtrips=150 if quick else 400)
    print(blocking.table.render(1))
    layering = ablation_mpi_layering()
    print(f"\nMPI-on-Nexus layering overhead: {layering.overhead:.1%}")
    adaptive = ablation_adaptive_skip(mpl_roundtrips=200 if quick else 600)
    print(f"adaptive skip_poll: MPL {adaptive.adaptive_mpl * 1e6:.1f} us "
          f"(best static {adaptive.best_static_mpl() * 1e6:.1f} us); "
          f"final skips {adaptive.final_skips}")
    sizes = ablation_lightweight_startpoints()
    print(f"startpoint wire size: {sizes.full_bytes} B full, "
          f"{sizes.lightweight_bytes} B lightweight "
          f"({sizes.saving:.0%} saving)")
    rendezvous = ablation_rendezvous(messages=4 if quick else 6)
    print(f"eager vs rendezvous: parked bytes "
          f"{rendezvous.eager_parked_bytes} -> "
          f"{rendezvous.rendezvous_parked_bytes} "
          f"({rendezvous.parked_reduction:.0%} reduction) at "
          f"{(rendezvous.rendezvous_time / rendezvous.eager_time - 1):.0%} "
          "extra completion time")


def _run_baselines(quick: bool) -> None:
    from ..baselines import run_mixed_workload
    from ..util.records import ResultTable

    rounds = 10 if quick else 30
    table = ResultTable("Prior art vs multimethod Nexus", ["ms/round"])
    table.add("p4 (hard-coded)",
              run_mixed_workload("p4", rounds=rounds).time_per_round * 1e3)
    table.add("pvm (daemon relay)",
              run_mixed_workload("pvm", rounds=rounds).time_per_round * 1e3)
    for skip in (1, 20):
        result = run_mixed_workload("nexus", rounds=rounds, skip_poll=skip)
        table.add(f"nexus skip_poll={skip}", result.time_per_round * 1e3)
    print(table.render())


ARTEFACTS: dict[str, _t.Callable[[bool], None]] = {
    "figure4": _run_figure4,
    "figure6": _run_figure6,
    "table1": _run_table1,
    "ablations": _run_ablations,
    "baselines": _run_baselines,
}


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation artefacts.",
    )
    parser.add_argument("artefacts", nargs="*", metavar="ARTEFACT",
                        help=f"one of: {', '.join(ARTEFACTS)} "
                             "(default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="trace every RSR lifecycle and write a "
                             "Chrome trace-event JSON (load in Perfetto)")
    parser.add_argument("--list", action="store_true",
                        help="list artefacts and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in ARTEFACTS:
            print(name)
        return 0

    selected = args.artefacts or list(ARTEFACTS)
    for name in selected:
        if name not in ARTEFACTS:
            parser.error(f"unknown artefact {name!r}; "
                         f"choose from {', '.join(ARTEFACTS)}")
    collected: list = []
    for name in selected:
        print(f"=== {name} {'(quick)' if args.quick else ''} ===")
        started = time.time()
        if args.trace:
            with _obs.collecting() as runs:
                ARTEFACTS[name](args.quick)
            collected.extend(runs)
        else:
            ARTEFACTS[name](args.quick)
        print(f"[{name}: {time.time() - started:.1f}s wall]\n")

    if args.trace:
        _obs.export.write_merged_chrome_trace(args.trace, collected)
        spans = sum(len(obs.spans) for obs, _nexus in collected)
        rsrs = sum(obs.rsrs_started for obs, _nexus in collected)
        print(f"trace: {spans} spans over {rsrs} RSRs from "
              f"{len(collected)} runtimes -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
