"""Tests for coupler regridding, including mixed-resolution coupling."""

import dataclasses

import numpy as np
import pytest

from repro.apps.climate import ClimateMode, run_coupled_model
from repro.apps.climate.config import TEST_CONFIG, ClimateConfig
from repro.apps.climate.regrid import regrid


class TestRegrid:
    def test_identity_when_shapes_match(self):
        field = np.random.default_rng(0).random((6, 8))
        out = regrid(field, (6, 8))
        assert np.array_equal(out, field)
        assert out is not field  # a copy, never a view

    def test_upsample_preserves_mean(self):
        field = np.random.default_rng(1).random((4, 8))
        out = regrid(field, (8, 16))
        assert out.shape == (8, 16)
        assert out.mean() == pytest.approx(field.mean())

    def test_downsample_preserves_mean(self):
        field = np.random.default_rng(2).random((8, 16))
        out = regrid(field, (2, 8))
        assert out.shape == (2, 8)
        assert out.mean() == pytest.approx(field.mean())

    def test_constant_field_exact(self):
        field = np.full((4, 6), 3.5)
        out = regrid(field, (7, 9))
        assert np.allclose(out, 3.5)

    def test_smooth_gradient_preserved(self):
        yy, xx = np.mgrid[0:8, 0:8]
        field = xx.astype(float)
        out = regrid(field, (16, 16))
        # still monotone along x
        assert (np.diff(out, axis=1) >= -1e-9).all()

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            regrid(np.zeros(5), (2, 2))


class TestMixedResolutionCoupling:
    """The ocean runs on a coarser grid than the atmosphere; the coupler
    regrids both directions."""

    @pytest.fixture(scope="class")
    def mixed_config(self):
        return dataclasses.replace(
            TEST_CONFIG,
            atmo_nx=24, atmo_ny=8,     # 2 rows per atmo rank
            ocean_nx=12, ocean_ny=8,   # coarser in x
        )

    def test_runs_to_completion(self, mixed_config):
        result = run_coupled_model(mixed_config, ClimateMode.SKIP_POLL,
                                   skip_poll=50)
        assert result.total_time > 0
        assert np.isfinite(result.atmo_checksum)
        assert np.isfinite(result.ocean_checksum)

    def test_deterministic(self, mixed_config):
        a = run_coupled_model(mixed_config, ClimateMode.SKIP_POLL,
                              skip_poll=50)
        b = run_coupled_model(mixed_config, ClimateMode.SKIP_POLL,
                              skip_poll=50)
        assert a.atmo_checksum == b.atmo_checksum
        assert a.ocean_checksum == b.ocean_checksum

    def test_physics_independent_of_comm_mode(self, mixed_config):
        selective = run_coupled_model(mixed_config, ClimateMode.SELECTIVE)
        all_tcp = run_coupled_model(mixed_config, ClimateMode.ALL_TCP)
        assert selective.atmo_checksum == pytest.approx(
            all_tcp.atmo_checksum)
        assert selective.ocean_checksum == pytest.approx(
            all_tcp.ocean_checksum)

    def test_same_grid_results_unchanged_by_regrid_path(self):
        """The identity regrid must not perturb the original experiment."""
        result = run_coupled_model(TEST_CONFIG, ClimateMode.SELECTIVE)
        again = run_coupled_model(TEST_CONFIG, ClimateMode.SELECTIVE)
        assert result.atmo_checksum == again.atmo_checksum
