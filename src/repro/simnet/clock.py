"""Virtual time for the discrete-event engine.

All times in :mod:`repro.simnet` are expressed in **seconds** as floats.
The clock only ever moves forward; :class:`VirtualClock` enforces this so
that a buggy cost model cannot silently corrupt an experiment.
"""

from __future__ import annotations

from .errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    The clock is owned by a :class:`~repro.simnet.engine.Simulator`; user
    code reads it through ``sim.now`` and never writes it directly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`ClockError` if ``t`` lies in the past — discrete-event
        causality means events must be processed in non-decreasing time
        order, so a backwards move always indicates an engine bug.
        """
        if t < self._now:
            raise ClockError(
                f"clock cannot move backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now!r})"
