"""Reliable-multicast communication module.

The paper motivates multicast with collaborative environments (shared
virtual spaces broadcasting state updates) and notes that a startpoint
bound to several endpoints performs a multicast.  This module supplies a
*group* transport: members join a named group; one send is serialised
once and delivered to every member.  The Nexus RSR layer detects when all
of a startpoint's links selected the same multicast group and collapses
the per-link sends into a single group send.
"""

from __future__ import annotations

import typing as _t

from .base import ContextLike, Descriptor, Transport, WireMessage
from .errors import DeliveryError
from .ipbase import IpTransport

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..simnet.node import Host


class MulticastTransport(IpTransport):
    """IP-multicast-style group delivery with reliable semantics."""

    name = "mcast"
    speed_rank = 12

    def __init__(self, services, costs):
        super().__init__(services, costs)
        #: group name -> ordered list of member context ids.
        self.groups: dict[str, list[int]] = {}

    # -- group management -----------------------------------------------------

    def join(self, group: str, context: ContextLike) -> None:
        """Add ``context`` to ``group`` (idempotent)."""
        members = self.groups.setdefault(group, [])
        if context.id not in members:
            members.append(context.id)
            self.services.tracer.incr("mcast.joins")

    def leave(self, group: str, context: ContextLike) -> None:
        members = self.groups.get(group, [])
        if context.id in members:
            members.remove(context.id)

    def members(self, group: str) -> tuple[int, ...]:
        return tuple(self.groups.get(group, ()))

    # -- descriptors --------------------------------------------------------

    def descriptor_for_group(self, context: ContextLike, group: str) -> Descriptor:
        """The descriptor a group member publishes for multicast delivery."""
        return Descriptor(
            method=self.name,
            context_id=context.id,
            params=(("host", context.host.id), ("group", group)),
        )

    def export_descriptor(self, context: ContextLike) -> Descriptor | None:
        # Multicast descriptors are group-specific; they are added to a
        # context's table explicitly via descriptor_for_group, never by
        # the default export scan.
        return None

    def applicable(self, local: ContextLike, descriptor: Descriptor,
                   remote_host: "Host") -> bool:
        group = descriptor.param("group")
        if group is None:
            return False
        if descriptor.context_id not in self.groups.get(_t.cast(str, group), ()):
            return False
        return self.network.ip_connected(local.host, remote_host)

    # -- group send -------------------------------------------------------------

    def send_group(self, local: ContextLike, state: dict, group: str,
                   message: WireMessage):
        """Generator: one serialisation, delivery to every group member.

        Used by the RSR layer when a multi-endpoint startpoint's links all
        share this group; ``send`` (single member, inherited) remains the
        fallback.
        """
        member_ids = [m for m in self.groups.get(group, ()) if m != local.id]
        if not member_ids:
            raise DeliveryError(f"multicast group {group!r} has no remote members")
        costs = self.costs
        yield from self._charge(costs.send_overhead)

        message.method = self.name
        message.sent_at = self.sim.now
        # One serialisation at the sender NIC covers all members.
        serialization = message.nbytes / costs.bandwidth
        yield self.sim.timeout(serialization)
        self.record_send(message)
        self.services.tracer.incr("mcast.group_sends")
        trace = message.trace
        if trace is not None:
            # The shared serialisation is the group's wire span; each
            # member's delivery forks a child chain under it.
            trace.transition("wire", ctx=local.id, lane=self.name,
                             group=group, members=len(member_ids))

        endpoints = _t.cast(dict, message.headers.get("endpoints", {}))
        for member_id in member_ids:
            destination = self.services.context(member_id)
            if not self.costs.reliable and self._drop():
                self.record_drop(nbytes=message.nbytes)
                continue
            copy = WireMessage(
                handler=message.handler,
                endpoint_id=_t.cast(int, endpoints.get(member_id,
                                                       message.endpoint_id)),
                src_context=message.src_context,
                dst_context=member_id,
                payload=message.payload,
                nbytes=message.nbytes,
                method=self.name,
                sent_at=message.sent_at,
                headers=dict(message.headers),
            )
            if trace is not None:
                copy.trace = trace.fork(ctx=member_id, lane=self.name,
                                        nbytes=copy.nbytes)
            profile = self.profile_between(local.host, destination.host)
            self.sim.process(
                self._arrive_later(destination, copy, profile.latency),
                name=f"mcast:arrive:{message.handler}",
            )
        if trace is not None:
            trace.retire()
