"""Seeded arrival processes and message-size distributions.

Everything the load tier injects into the stack is generated here, from
named substreams of :mod:`repro.simnet.random` — so a scenario's traffic
is a pure function of its root seed and two runs with the same seed are
byte-identical, no matter how many other consumers draw randomness.

Three families of primitive:

* **Arrival processes** — :class:`OpenLoop` (Poisson arrivals issued on
  a wall schedule regardless of completions; the offered-load model) and
  :class:`ClosedLoop` (a fixed client population with think times; the
  interactive-user model).
* **Rate modulations** — :class:`Diurnal` and :class:`Bursty` reshape an
  open-loop rate over sim time (thinned Poisson, so the process stays
  exact, not binned).
* **Size distributions** — :class:`FixedSize`, :class:`UniformSize`,
  :class:`LognormalSize`, and the heavy-tailed :class:`ParetoSize`
  (bounded, because simulated switches have finite patience too).

:class:`MixedRoundPattern` is the deterministic round/exchange schedule
the prior-art baseline workload uses — kept here so every traffic shape
in the repo lives behind one module.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    import numpy as np


class LoadSpecError(ValueError):
    """A load specification is malformed."""


# ---------------------------------------------------------------------------
# message-size distributions
# ---------------------------------------------------------------------------

class SizeDist:
    """Base class: a distribution of RSR payload sizes in bytes."""

    def sample(self, rng: "np.random.Generator") -> int:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected payload size (used for offered-bytes accounting)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FixedSize(SizeDist):
    """Every message carries exactly ``nbytes``."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise LoadSpecError(f"negative message size {self.nbytes!r}")

    def sample(self, rng: "np.random.Generator") -> int:
        return self.nbytes

    def mean(self) -> float:
        return float(self.nbytes)


@dataclasses.dataclass(frozen=True)
class UniformSize(SizeDist):
    """Sizes drawn uniformly from ``[low, high]`` inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise LoadSpecError(
                f"bad uniform size range [{self.low}, {self.high}]")

    def sample(self, rng: "np.random.Generator") -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclasses.dataclass(frozen=True)
class LognormalSize(SizeDist):
    """Log-normal sizes around ``median`` with shape ``sigma``, capped.

    The classic fit for RPC payload distributions: most messages small,
    a long right tail of bulk transfers.
    """

    median: float
    sigma: float = 1.0
    cap: int = 1 << 20

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0 or self.cap < self.median:
            raise LoadSpecError(
                f"bad lognormal size spec median={self.median!r} "
                f"sigma={self.sigma!r} cap={self.cap!r}")

    def sample(self, rng: "np.random.Generator") -> int:
        value = rng.lognormal(mean=math.log(self.median), sigma=self.sigma)
        return min(int(value), self.cap)

    def mean(self) -> float:
        # Mean of the *uncapped* lognormal; close enough for accounting.
        return float(self.median * math.exp(self.sigma ** 2 / 2.0))


@dataclasses.dataclass(frozen=True)
class ParetoSize(SizeDist):
    """Bounded Pareto sizes: heavy-tailed with exponent ``alpha``.

    ``alpha <= 2`` gives the infinite-variance regime where tail
    messages dominate transferred bytes — the adversarial case for any
    single-method transport choice.
    """

    minimum: int
    alpha: float = 1.5
    cap: int = 1 << 20

    def __post_init__(self) -> None:
        if self.minimum <= 0 or self.alpha <= 0 or self.cap < self.minimum:
            raise LoadSpecError(
                f"bad pareto size spec minimum={self.minimum!r} "
                f"alpha={self.alpha!r} cap={self.cap!r}")

    def sample(self, rng: "np.random.Generator") -> int:
        value = self.minimum * (1.0 + rng.pareto(self.alpha))
        return min(int(value), self.cap)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float(self.cap)  # mean diverges; the cap binds
        return float(self.minimum * self.alpha / (self.alpha - 1.0))


# ---------------------------------------------------------------------------
# rate modulations
# ---------------------------------------------------------------------------

class Modulation:
    """A time-varying multiplier applied to an open-loop rate.

    ``factor(t)`` must lie in ``[0, peak]``; ``peak`` bounds it so the
    thinning construction in :meth:`OpenLoop.times` stays exact.
    """

    peak: float = 1.0

    def factor(self, t: float) -> float:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class Diurnal(Modulation):
    """Sinusoidal day/night swing: factor ``1`` at peak, ``1 - depth``
    in the trough, over ``period`` sim-seconds."""

    period: float
    depth: float = 0.5
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or not 0.0 <= self.depth <= 1.0:
            raise LoadSpecError(
                f"bad diurnal spec period={self.period!r} "
                f"depth={self.depth!r}")

    def factor(self, t: float) -> float:
        swing = 0.5 * (1.0 + math.cos(
            2.0 * math.pi * (t / self.period + self.phase)))
        return 1.0 - self.depth * (1.0 - swing)


@dataclasses.dataclass(frozen=True)
class Bursty(Modulation):
    """Square-wave bursts: ``boost``× the base rate for the first
    ``duty`` fraction of every ``period``, quiet otherwise."""

    period: float
    duty: float = 0.2
    boost: float = 4.0
    quiet: float = 0.25

    def __post_init__(self) -> None:
        if (self.period <= 0 or not 0.0 < self.duty < 1.0
                or self.boost < 1.0 or self.quiet < 0.0):
            raise LoadSpecError(
                f"bad bursty spec period={self.period!r} duty={self.duty!r} "
                f"boost={self.boost!r} quiet={self.quiet!r}")

    @property
    def peak(self) -> float:  # type: ignore[override]
        return self.boost

    def factor(self, t: float) -> float:
        within = (t / self.period) % 1.0
        return self.boost if within < self.duty else self.quiet


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class OpenLoop:
    """Open-loop Poisson arrivals at ``rate`` RSRs/sim-second per client.

    Arrivals are issued on schedule whether or not earlier requests have
    completed — offered load, the quantity a capacity plan sweeps.  With
    a :class:`Modulation` the process is an inhomogeneous Poisson
    process realised by thinning (candidates at ``rate * peak``, each
    kept with probability ``factor(t) / peak``), so modulated and
    unmodulated runs draw from the same exact process family.
    """

    rate: float
    modulation: Modulation | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise LoadSpecError(f"open-loop rate must be > 0, "
                                f"got {self.rate!r}")

    @property
    def closed(self) -> bool:
        return False

    def times(self, rng: "np.random.Generator", start: float,
              until: float) -> _t.Iterator[float]:
        """Absolute arrival times in ``[start, until)``."""
        modulation = self.modulation
        peak_rate = self.rate * (modulation.peak if modulation else 1.0)
        t = start
        while True:
            t += rng.exponential(1.0 / peak_rate)
            if t >= until:
                return
            if modulation is not None:
                keep = modulation.factor(t) / modulation.peak
                if rng.random() >= keep:
                    continue
            yield t


@dataclasses.dataclass(frozen=True)
class ClosedLoop:
    """Closed-loop clients: issue, await the reply, think, repeat.

    ``think_time`` is the mean of an exponential think delay (or exact
    when ``jitter=False``).  A closed-loop fleet self-limits: offered
    load tracks completion rate, so it probes *latency under
    concurrency* where open-loop probes *stability under offered rate*.
    """

    think_time: float
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.think_time < 0:
            raise LoadSpecError(
                f"negative think time {self.think_time!r}")

    @property
    def closed(self) -> bool:
        return True

    def think(self, rng: "np.random.Generator") -> float:
        if not self.jitter or self.think_time == 0.0:
            return self.think_time
        return float(rng.exponential(self.think_time))


ArrivalProcess = _t.Union[OpenLoop, ClosedLoop]


# ---------------------------------------------------------------------------
# deterministic round schedules (baseline workloads)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RoundOp:
    """One round of the mixed prior-art workload."""

    index: int
    local_bytes: int
    remote_bytes: int | None  # None: no inter-partition exchange this round


@dataclasses.dataclass(frozen=True)
class MixedRoundPattern:
    """The baseline mixed workload's deterministic traffic pattern.

    Every round carries a ``local_bytes`` partner exchange; every
    ``remote_every``-th round (starting at round 0) additionally carries
    a ``remote_bytes`` cross-partition exchange.  Extracted from
    :mod:`repro.baselines.workload` so synthetic and prior-art traffic
    shapes share one vocabulary.
    """

    local_bytes: int = 2048
    remote_bytes: int = 16 * 1024
    remote_every: int = 5

    def __post_init__(self) -> None:
        if (self.local_bytes < 0 or self.remote_bytes < 0
                or self.remote_every < 1):
            raise LoadSpecError(
                f"bad mixed-round pattern {self!r}")

    def rounds(self, count: int) -> _t.Iterator[RoundOp]:
        """The first ``count`` rounds of the schedule."""
        for index in range(count):
            yield RoundOp(
                index=index,
                local_bytes=self.local_bytes,
                remote_bytes=(self.remote_bytes
                              if index % self.remote_every == 0 else None),
            )

    def bytes_per_round(self) -> float:
        """Mean offered bytes per round (both directions of each pair)."""
        return (self.local_bytes
                + self.remote_bytes / self.remote_every)


__all__ = [
    "ArrivalProcess",
    "Bursty",
    "ClosedLoop",
    "Diurnal",
    "FixedSize",
    "LoadSpecError",
    "LognormalSize",
    "MixedRoundPattern",
    "Modulation",
    "OpenLoop",
    "ParetoSize",
    "RoundOp",
    "SizeDist",
    "UniformSize",
]
