#!/usr/bin/env python
"""Quickstart: communication links, RSRs, and automatic method selection.

Builds the paper's two-partition SP2, creates three contexts, and shows
the core Nexus workflow:

1. register a handler and create an endpoint;
2. bind a startpoint to it (the communication link);
3. issue remote service requests — the method is selected automatically
   (MPL inside a partition, TCP across partitions);
4. inspect what happened through the one-stop enquiry report.

Run:  python examples/quickstart.py
"""

from repro import Buffer, enquiry, make_sp2
from repro.util.units import format_time


def main() -> None:
    bed = make_sp2(nodes_a=2, nodes_b=1)
    with bed.nexus as nexus:
        # Three address spaces: two in partition A, one in partition B.
        alice = nexus.context(bed.hosts_a[0], "alice")
        bob = nexus.context(bed.hosts_a[1], "bob")
        carol = nexus.context(bed.hosts_b[0], "carol")

        received = []

        def greet(ctx, endpoint, buffer):
            sender = buffer.get_str()
            value = buffer.get_int()
            received.append((ctx.name, sender, value, nexus.now))

        bob.register_handler("greet", greet)
        carol.register_handler("greet", greet)

        # Communication links: alice -> bob (same partition: MPL will
        # win) and alice -> carol (across partitions: only TCP applies).
        to_bob = alice.startpoint_to(bob.new_endpoint())
        to_carol = alice.startpoint_to(carol.new_endpoint())

        def alice_body():
            yield from to_bob.rsr("greet",
                                  Buffer().put_str("alice").put_int(1))
            yield from to_carol.rsr("greet",
                                    Buffer().put_str("alice").put_int(2))

        def wait_body(ctx):
            yield from ctx.wait(lambda: any(name == ctx.name
                                            for name, *_ in received))

        nexus.run_until(alice_body(), wait_body(bob), wait_body(carol))

        print("deliveries:")
        for ctx_name, sender, value, at in sorted(received,
                                                  key=lambda r: r[3]):
            print(f"  {sender} -> {ctx_name}: value={value} "
                  f"at t={format_time(at)}")

        print("\nselected methods (automatic, fastest-first):")
        print(f"  alice->bob:   {enquiry.current_methods(to_bob)}")
        print(f"  alice->carol: {enquiry.current_methods(to_carol)}")

        print("\nwhat each link could have used:")
        print(f"  alice->bob:   "
              f"{enquiry.applicable_methods(alice, to_bob)[0]}")
        print(f"  alice->carol: "
              f"{enquiry.applicable_methods(alice, to_carol)[0]}")

        est = enquiry.estimate_one_way(alice, to_bob, 1024)
        print(f"\nestimated one-way for 1 KB to bob: {format_time(est)}")

        report = enquiry.report(nexus)
        print("transport traffic:")
        for name, stats in report.transports.items():
            if stats.messages_sent:
                print(f"  {name}: {stats.messages_sent} messages, "
                      f"{stats.bytes_sent} bytes")


if __name__ == "__main__":
    main()
