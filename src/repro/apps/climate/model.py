"""The coupled-model driver: Table 1's experiment in executable form.

Builds the paper's platform (16-node + 8-node SP2 partitions), places a
really-computing atmosphere and ocean on them over mini-MPI, configures
one of the four multimethod modes, runs a fixed number of coupled steps,
and reports seconds per timestep plus diagnostic breakdowns.

Workload model per atmosphere step and rank (see
:class:`~repro.apps.climate.config.ClimateConfig` for the calibration):

* three real halo exchanges (h, u, v) through mini-MPI;
* one real physics update (numpy; verified by the test suite);
* ``ops_per_step`` Nexus operations + ``atmo_compute_s`` of computation,
  charged through the poll manager's ``busy_work`` so every operation
  runs the (possibly skip-decimated) polling function;
* ``bulk_phases`` real transpose-style exchanges of
  ``bulk_bytes_per_phase`` with the partner rank;
* a semi-analytic fine-grained message chain priced at the *currently
  selected* method's per-message cost.

Every ``couple_every`` steps the models exchange flux/SST over the
partition boundary (TCP).
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

from ...core.context import Context
from ...core.enquiry import estimate_one_way
from ...core.forwarding import ForwardingService
from ...mpi.communicator import Communicator
from ...mpi.datatypes import Padded
from ...mpi.mpi import MPIWorld, MpiConfig, MpiProcess
from ...testbeds import make_sp2
from .atmosphere import Atmosphere
from .config import ClimateConfig, ClimateMode
from .coupling import atmo_children, atmo_exchange, ocean_exchange
from .grid import halo_exchange
from .ocean import Ocean
from .regrid import regrid

TAG_BULK = 301


def _ops_for(cfg: ClimateConfig, rank: int, step: int) -> int:
    """Per-rank, per-step Nexus operation count.

    A deterministic, centred jitter (±~15k ops around ``ops_per_step``)
    decorrelates the ranks' poll counters.  Real model ranks never
    execute identical op counts (physics is latitude-dependent); without
    this, every rank's ``skip_poll`` counter sits at the same phase and
    the coupling-detection delay becomes an arbitrary function of
    ``counter mod k`` instead of its expected value.
    """
    jitter = ((rank + 1) * 509 + (step + 1) * 1031) % 30011 - 15005
    return max(cfg.ops_per_step + jitter, 1)


@dataclasses.dataclass
class ClimateResult:
    """Outcome of one coupled-model run."""

    mode: ClimateMode
    skip_poll: int
    config: ClimateConfig
    total_time: float
    coupling_wait: float        # mean seconds per rank spent in the coupler
    tcp_poll_time: float        # total select time across all contexts
    atmo_checksum: float
    ocean_checksum: float
    events_processed: int

    @property
    def seconds_per_step(self) -> float:
        return self.total_time / self.config.steps

    @property
    def label(self) -> str:
        if self.mode is ClimateMode.SKIP_POLL:
            return f"skip poll {self.skip_poll}"
        return {
            ClimateMode.ALL_TCP: "all TCP (no multimethod)",
            ClimateMode.SELECTIVE: "Selective TCP",
            ClimateMode.FORWARDING: "Forwarding",
            ClimateMode.ADAPTIVE: "adaptive skip poll",
        }[self.mode]


def _internal_section(proc: MpiProcess, mode: ClimateMode):
    """The poll mask for the model-internal program section."""
    if mode is ClimateMode.SELECTIVE:
        return proc.context.poll_manager.only("local", "mpl")
    return contextlib.nullcontext()


def _bulk_partner(local_rank: int, size: int) -> int:
    """Disjoint transpose pairing: even↔odd neighbour."""
    partner = local_rank ^ 1
    return partner if partner < size else local_rank


def _bulk_exchanges(proc: MpiProcess, comm: Communicator, local_rank: int,
                    cfg: ClimateConfig):
    """Generator: the per-step transpose-style bulk exchanges."""
    partner = _bulk_partner(local_rank, comm.size)
    if partner == local_rank:
        return
    for phase in range(cfg.bulk_phases):
        yield from proc.sendrecv(
            Padded(None, cfg.bulk_bytes_per_phase), partner,
            TAG_BULK + phase, partner, TAG_BULK + phase, comm)


def _small_traffic(proc: MpiProcess, neighbour_world: int,
                   cfg: ClimateConfig):
    """Generator: semi-analytic fine-grained internal message chain.

    ``small_msgs_per_step`` request/response messages priced at the
    per-message cost of the method actually selected on the link to the
    neighbour.  (The matching poll activity for these operations is part
    of ``ops_per_step`` in ``busy_work``.)
    """
    context = proc.context
    sp = proc.startpoint_to(neighbour_world)
    if sp.links[0].comm is None:
        sp.ensure_connected(sp.links[0])
    per_message = estimate_one_way(context, sp, cfg.small_msg_bytes)
    assert per_message is not None
    yield from context.charge(cfg.small_msgs_per_step * per_message)


def run_coupled_model(cfg: ClimateConfig, mode: ClimateMode, *,
                      skip_poll: int = 1,
                      mpi_config: MpiConfig | None = None,
                      seed: int = 0,
                      transports: _t.Sequence[str] | None = None,
                      costs: _t.Mapping[str, object] | None = None,
                      methods: _t.Sequence[str] | None = None,
                      retry_policy: object | None = None,
                      health: object | None = None,
                      on_start: _t.Callable[..., None] | None = None,
                      on_finish: _t.Callable[..., None] | None = None,
                      ) -> ClimateResult:
    """Run the coupled model in one multimethod configuration.

    ``transports``/``costs``/``retry_policy``/``health`` flow through to
    the testbed's :class:`~repro.core.runtime.Nexus`; ``methods``
    overrides the per-context method set the mode would pick.  The two
    hooks frame the simulation itself: ``on_start(bed, contexts)`` fires
    after every context and MPI process exists but before the clock
    moves (install fault plans here); ``on_finish(bed, contexts)`` fires
    once all ranks finish, while the runtime is still inspectable.
    """
    bed = make_sp2(nodes_a=cfg.atmo_ranks, nodes_b=cfg.ocean_ranks,
                   seed=seed,
                   transports=transports or ("local", "mpl", "tcp"),
                   costs=costs,  # type: ignore[arg-type]
                   retry_policy=retry_policy,  # type: ignore[arg-type]
                   health=health)  # type: ignore[arg-type]
    nexus = bed.nexus
    if methods is None:
        methods = (("local", "tcp") if mode is ClimateMode.ALL_TCP
                   else ("local", "mpl", "tcp"))
    atmo_ctxs = [nexus.context(h, f"atmo{i}", methods=methods)
                 for i, h in enumerate(bed.hosts_a)]
    ocean_ctxs = [nexus.context(h, f"ocean{i}", methods=methods)
                  for i, h in enumerate(bed.hosts_b)]
    contexts: list[Context] = atmo_ctxs + ocean_ctxs

    if mode is ClimateMode.SKIP_POLL:
        for ctx in contexts:
            ctx.poll_manager.set_skip("tcp", skip_poll)
    elif mode is ClimateMode.ADAPTIVE:
        from ...core.adaptive import AdaptiveConfig, AdaptiveSkipPoll

        # Bound the back-off so that worst-case detection latency
        # (skip x wait-loop cycle, ~16 us) stays within the budget: the
        # select tax is already negligible well before that bound.
        max_skip = max(int(cfg.adaptive_latency_budget / 16e-6), 8)
        for ctx in contexts:
            controller = AdaptiveSkipPoll(
                ctx, "tcp",
                AdaptiveConfig(max_skip=max_skip, raise_after_misses=4,
                               latency_budget=cfg.adaptive_latency_budget))
            controller.attach()
    elif mode is ClimateMode.FORWARDING:
        # One dedicated forwarder per partition: all external TCP traffic
        # lands there and is re-sent over MPL; other nodes stop polling
        # TCP altogether (Section 3.3).
        for forwarder, members in ((atmo_ctxs[0], atmo_ctxs),
                                   (ocean_ctxs[0], ocean_ctxs)):
            service = ForwardingService(nexus)
            service.install(forwarder, members)

    world = MPIWorld(nexus, contexts, config=mpi_config)
    atmo_comm = world.create_comm(range(cfg.atmo_ranks))
    ocean_comm = world.create_comm(
        range(cfg.atmo_ranks, cfg.total_ranks))

    atmos: dict[int, Atmosphere] = {}
    oceans: dict[int, Ocean] = {}
    coupling_wait = {"total": 0.0}

    def atmo_body(proc: MpiProcess):
        rank = proc.rank  # == atmosphere-local rank
        model = Atmosphere(rank, cfg.atmo_ranks, cfg.atmo_nx, cfg.atmo_ny,
                           seed=seed)
        atmos[rank] = model
        neighbour = rank + 1 if rank + 1 < cfg.atmo_ranks else rank - 1
        for step in range(cfg.steps):
            with _internal_section(proc, mode):
                for slab in model.slabs:
                    yield from halo_exchange(proc, atmo_comm, slab)
                model.step_interior()
                yield from proc.context.poll_manager.busy_work(
                    _ops_for(cfg, proc.rank, step), cfg.atmo_compute_s)
                yield from _bulk_exchanges(proc, atmo_comm, rank, cfg)
                yield from _small_traffic(proc, neighbour, cfg)
            if (step + 1) % cfg.couple_every == 0:
                started = nexus.now
                flux = model.surface_fluxes()
                sst = yield from atmo_exchange(
                    proc, flux, atmo_rank=rank, atmo_ranks=cfg.atmo_ranks,
                    ocean_ranks=cfg.ocean_ranks,
                    coupling_bytes=cfg.coupling_bytes)
                model.apply_sst(sst)
                coupling_wait["total"] += nexus.now - started

    def ocean_body(proc: MpiProcess):
        local = proc.rank - cfg.atmo_ranks
        model = Ocean(local, cfg.ocean_ranks, cfg.ocean_nx, cfg.ocean_ny,
                      seed=seed + 1)
        oceans[local] = model
        neighbour_local = local + 1 if local + 1 < cfg.ocean_ranks else local - 1
        neighbour_world = cfg.atmo_ranks + neighbour_local
        children = atmo_children(local, cfg.atmo_ranks, cfg.ocean_ranks)
        band_rows = model.sst.local_ny // len(children)
        atmo_band = (cfg.atmo_ny // cfg.atmo_ranks, cfg.atmo_nx)

        def sst_for(index: int):
            band = model.surface_temperature()[
                index * band_rows:(index + 1) * band_rows]
            # Regrid to the atmosphere child's band (identity when the
            # grids agree).
            return regrid(band, atmo_band)

        def apply_flux(index: int, flux):
            model.flux.interior[
                index * band_rows:(index + 1) * band_rows] = regrid(
                    flux, (band_rows, cfg.ocean_nx))

        for step in range(cfg.steps):
            with _internal_section(proc, mode):
                yield from halo_exchange(proc, ocean_comm, model.sst)
                model.step_interior()
                yield from proc.context.poll_manager.busy_work(
                    _ops_for(cfg, proc.rank, step), cfg.ocean_compute_s)
                yield from _bulk_exchanges(proc, ocean_comm, local, cfg)
                if cfg.ocean_ranks > 1:
                    yield from _small_traffic(proc, neighbour_world, cfg)
            if (step + 1) % cfg.couple_every == 0:
                started = nexus.now
                yield from ocean_exchange(
                    proc, sst_for, apply_flux, ocean_rank=local,
                    atmo_ranks=cfg.atmo_ranks, ocean_ranks=cfg.ocean_ranks,
                    coupling_bytes=cfg.coupling_bytes)
                coupling_wait["total"] += nexus.now - started

    handles = []
    handles += world.run_spmd(atmo_body, ranks=range(cfg.atmo_ranks))
    handles += world.run_spmd(ocean_body,
                              ranks=range(cfg.atmo_ranks, cfg.total_ranks))
    if on_start is not None:
        on_start(bed, contexts)
    nexus.run_until(*handles)
    if on_finish is not None:
        on_finish(bed, contexts)

    tcp_poll_time = sum(
        ctx.poll_manager.stats.poll_time.get("tcp", 0.0) for ctx in contexts)
    return ClimateResult(
        mode=mode,
        skip_poll=skip_poll if mode is ClimateMode.SKIP_POLL else 0,
        config=cfg,
        total_time=nexus.now,
        coupling_wait=coupling_wait["total"] / cfg.total_ranks,
        tcp_poll_time=tcp_poll_time,
        atmo_checksum=sum(m.checksum() for m in atmos.values()),
        ocean_checksum=sum(m.checksum() for m in oceans.values()),
        events_processed=nexus.sim.events_processed,
    )
