"""Tests for the trace exporters and the trace-document validator."""

import json

import pytest

from repro.obs import export
from repro.obs.validate import TraceValidationError, validate_trace_document

from .test_spans import run_pingpong


@pytest.fixture(scope="module")
def traced():
    """One traced ping-pong run, shared by the read-only export tests."""
    bed = run_pingpong()
    return bed.nexus.obs, bed.nexus


class TestChromeTrace:
    def test_document_passes_the_validator(self, traced):
        obs, nexus = traced
        validate_trace_document(export.to_chrome_trace(obs, nexus))

    def test_round_trips_through_json(self, traced):
        obs, nexus = traced
        document = export.to_chrome_trace(obs, nexus)
        assert json.loads(export.dumps_chrome_trace(document)) == document

    def test_metadata_names_every_context_and_lane(self, traced):
        obs, nexus = traced
        events = export.chrome_trace_events(obs)
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        named = {e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert pids <= named
        assert sorted(pids) == list(range(1, len(pids) + 1))  # dense

    def test_events_carry_causal_ids(self, traced):
        obs, _nexus = traced
        events = [e for e in export.chrome_trace_events(obs)
                  if e["ph"] == "X"]
        assert len(events) == len(obs.spans)
        for event in events:
            assert event["args"]["rsr"] >= 1
            assert event["dur"] >= 0

    def test_context_names_from_nexus(self, traced):
        obs, nexus = traced
        events = export.to_chrome_trace(obs, nexus)["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"a", "b", "c"} <= names

    def test_write_and_validate_file(self, traced, tmp_path):
        obs, nexus = traced
        path = tmp_path / "trace.json"
        export.write_chrome_trace(str(path), obs, nexus)
        validate_trace_document(json.loads(path.read_text()))

    def test_merged_trace_separates_runs(self, traced):
        obs, nexus = traced
        document = export.merged_chrome_trace([(obs, nexus), (obs, nexus)])
        validate_trace_document(document)
        pids = {e["pid"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert any(pid >= 1000 for pid in pids)
        assert set(document["metrics"]) == {"run0", "run1"}


class TestJsonl:
    def test_one_valid_record_per_span(self, traced):
        obs, _nexus = traced
        lines = list(export.spans_jsonl(obs))
        assert len(lines) == len(obs.spans)
        records = [json.loads(line) for line in lines]
        assert [r["span"] for r in records] == [s.id for s in obs.spans]
        assert all(r["end"] is not None for r in records)

    def test_write_jsonl(self, traced, tmp_path):
        obs, _nexus = traced
        path = tmp_path / "spans.jsonl"
        export.write_spans_jsonl(str(path), obs)
        content = path.read_text().splitlines()
        assert len(content) == len(obs.spans)


class TestTerminalRenderings:
    def test_ascii_timeline(self, traced):
        obs, _nexus = traced
        timeline = export.ascii_timeline(obs)
        assert "timeline t=[" in timeline
        assert "~=wire" in timeline  # legend
        assert "/mpl" in timeline and "/tcp" in timeline

    def test_ascii_timeline_empty(self, sim):
        from repro.obs import Observability
        assert "no closed spans" in export.ascii_timeline(
            Observability(sim, enabled=True))

    def test_latency_chart(self, traced):
        obs, _nexus = traced
        chart = export.latency_chart(obs)
        assert "latency" in chart
        assert "mpl" in chart and "tcp" in chart


class TestValidator:
    def _valid(self, traced):
        obs, nexus = traced
        return export.to_chrome_trace(obs, nexus)

    def test_rejects_non_dict(self):
        with pytest.raises(TraceValidationError):
            validate_trace_document([])

    def test_rejects_empty_events(self, traced):
        document = dict(self._valid(traced), traceEvents=[])
        with pytest.raises(TraceValidationError):
            validate_trace_document(document)

    def test_rejects_missing_phases(self, traced):
        document = dict(self._valid(traced))
        document["traceEvents"] = [
            e for e in document["traceEvents"]
            if e["ph"] != "X" or e["name"] != "poll_detect"]
        with pytest.raises(TraceValidationError, match="poll_detect"):
            validate_trace_document(document)

    def test_rejects_missing_latency_metrics(self, traced):
        document = dict(self._valid(traced), metrics={})
        with pytest.raises(TraceValidationError, match="rsr_latency_us"):
            validate_trace_document(document)


class TestEmptyMergedTrace:
    """Regression: zero collected runs must still write a valid trace
    (e.g. ``--trace`` around an artefact that builds no Nexus)."""

    def test_write_zero_runs_produces_valid_document(self, tmp_path):
        path = tmp_path / "empty.json"
        export.write_merged_chrome_trace(str(path), [])
        document = json.loads(path.read_text())
        summary = validate_trace_document(document)
        assert summary["span_events"] == 0
        assert document["traceEvents"] == []
        assert document["otherData"]["runs"] == 0

    def test_validate_cli_accepts_empty_trace(self, tmp_path):
        from repro.obs.validate import main as validate_main

        path = tmp_path / "empty.json"
        export.write_merged_chrome_trace(str(path), [])
        assert validate_main([str(path)]) == 0

    def test_undeclared_emptiness_still_fails(self):
        # An empty event list is only valid when the document itself
        # declares zero spans — arbitrary hollow documents stay invalid.
        with pytest.raises(TraceValidationError):
            validate_trace_document({"traceEvents": [], "metrics": {}})
        with pytest.raises(TraceValidationError):
            validate_trace_document(
                {"traceEvents": [], "metrics": {},
                 "otherData": {"spans": 3}})

    def test_empty_single_run_export_is_valid(self):
        from repro.obs.spans import Observability
        from repro.simnet import Simulator

        obs = Observability(Simulator(), enabled=True)
        validate_trace_document(export.to_chrome_trace(obs))
