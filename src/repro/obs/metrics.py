"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The flat :class:`~repro.simnet.trace.Tracer` answers "how many / how
long in total"; this registry answers *distributional* questions — what
is the p95 dispatch latency of MPL RSRs, how many messages does a TCP
poll typically find — which is what the paper's enquiry-function mandate
("evaluate the effectiveness of automatic selection") actually needs.

Design constraints:

* **Deterministic.**  Metric identity is ``(name, sorted labels)``;
  iteration order is sorted at snapshot time, so identical runs produce
  identical snapshots byte for byte.
* **Fixed buckets.**  Histograms use a fixed upper-bound ladder chosen
  at creation (defaults suit microsecond latencies), so two runs always
  agree on bucket boundaries and snapshots merge trivially.
* **Cheap.**  ``observe``/``inc`` are a bisect plus a few adds; the
  registry allocates only on first use of a ``(name, labels)`` pair.
"""

from __future__ import annotations

import bisect
import typing as _t

#: Default histogram ladder for latencies in microseconds: covers 1 µs
#: (local dispatch) to 10 s (WAN + heavy skip_poll detection delays).
LATENCY_BUCKETS_US: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 1e7,
)

#: Ladder for small counts (messages found per poll, queue depths).
COUNT_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 5.0, 10.0,
                                    20.0, 50.0, 100.0)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: _t.Mapping[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value; also tracks the high-water mark."""

    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self) -> dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value,
                "max": self.max_value}


class Histogram:
    """Fixed-bucket histogram: counts of values ≤ each upper bound.

    ``bounds`` must be strictly increasing; values above the last bound
    land in an implicit overflow bucket.  Exact ``sum``/``min``/``max``
    are kept alongside the buckets so means are not quantised.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, labels: LabelItems,
                 bounds: _t.Sequence[float]):
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be strictly "
                             f"increasing, got {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.min_value: float | None = None
        self.max_value: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Upper bound of the bucket containing the q-quantile (an
        over-estimate, exact for the overflow bucket's max)."""
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.counts):
            cumulative += bucket
            if cumulative >= target:
                return bound
        return self.max_value

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, count) for every populated bucket; the overflow
        bucket reports the observed maximum as its bound."""
        out = []
        for bound, bucket in zip(self.bounds, self.counts):
            if bucket:
                out.append((bound, bucket))
        if self.counts[-1]:
            out.append((_t.cast(float, self.max_value), self.counts[-1]))
        return out

    def snapshot(self) -> dict[str, object]:
        return {
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }


class MetricsRegistry:
    """Label-aware registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], object] = {}

    def _get(self, kind: type, name: str, labels: dict[str, object],
             factory: _t.Callable[[], object]) -> object:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r}{dict(key[1])!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return _t.cast(Counter, self._get(
            Counter, name, labels,
            lambda: Counter(name, _label_key(labels))))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _t.cast(Gauge, self._get(
            Gauge, name, labels,
            lambda: Gauge(name, _label_key(labels))))

    def histogram(self, name: str,
                  bounds: _t.Sequence[float] = LATENCY_BUCKETS_US,
                  **labels: object) -> Histogram:
        return _t.cast(Histogram, self._get(
            Histogram, name, labels,
            lambda: Histogram(name, _label_key(labels), bounds)))

    def collect(self, name: str | None = None
                ) -> list[tuple[str, LabelItems, object]]:
        """All metrics (optionally one name), deterministically sorted."""
        items = [(key[0], key[1], metric)
                 for key, metric in self._metrics.items()
                 if name is None or key[0] == name]
        items.sort(key=lambda item: (item[0], item[1]))
        return items

    def snapshot(self) -> dict[str, list[dict[str, object]]]:
        """Plain-dict form of every metric, sorted, for export/report."""
        out: dict[str, list[dict[str, object]]] = {}
        for name, _labels, metric in self.collect():
            out.setdefault(name, []).append(
                _t.cast("Counter | Gauge | Histogram", metric).snapshot())
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricsRegistry metrics={len(self._metrics)}>"
