"""Regridding between the atmosphere and ocean grids.

Production couplers interpolate exchanged fields between component
grids; the paper's Millenia model coupled a (coarse) spectral atmosphere
to a different-resolution ocean.  This module provides the bilinear
regridding our coupler applies when the two bands differ in shape —
with a mean-preserving correction, since the coupler's fields (fluxes,
SST) must not gain or lose their large-scale magnitude in transit.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def regrid(field: np.ndarray, shape: tuple[int, int], *,
           preserve_mean: bool = True) -> np.ndarray:
    """Bilinearly resample a 2-D band onto ``shape``.

    ``grid_mode`` zooming treats cells as pixels covering the domain, so
    the result samples the same physical region at the new resolution.
    With ``preserve_mean`` the output is shifted so its mean equals the
    input's exactly (bilinear sampling is only approximately
    mean-preserving on coarse bands).
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"regrid expects a 2-D band, got {field.ndim}-D")
    if field.shape == tuple(shape):
        return field.copy()
    factors = (shape[0] / field.shape[0], shape[1] / field.shape[1])
    out = ndimage.zoom(field, factors, order=1, grid_mode=True,
                       mode="nearest")
    # zoom's output shape is round(in * factor); force exactness.
    out = out[:shape[0], :shape[1]]
    if out.shape != tuple(shape):  # pragma: no cover - zoom undershoot
        pad = [(0, shape[0] - out.shape[0]), (0, shape[1] - out.shape[1])]
        out = np.pad(out, pad, mode="edge")
    if preserve_mean:
        out += field.mean() - out.mean()
    return out
