"""Every example script must run to completion (they are deliverables).

Executed in-process via runpy (same interpreter, fresh ``__main__``),
with stdout captured and spot-checked for each scenario's headline.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script name -> a fragment its output must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "selected methods",
    "method_selection.py": "selected ['mpl']",
    "coupled_climate.py": "identical across all configurations",
    "instrument_stream.py": "failover at",
    "collaborative_multicast.py": "ratio 100%",
    "satellite_pipeline.py": "mean pipeline latency",
    "fortran_m_pipeline.py": "merged stream",
    "protocol_stacks.py": "lzw+tcp",
    "chaos_climate.py": "TCP recovered",
    "load_capacity.py": "reproduced as capacity",
    "telemetry_analysis.py": "in-window violations the aggregate missed",
    "streaming_telemetry.py": "byte-identical to the in-memory extraction",
    "fleet_sweep.py": "reproduced the serial probe sequence and capacity "
                      "exactly",
    "placement_search.py": "rediscovered the paper's forwarding placement",
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT disagree — add the new example here")


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = capsys.readouterr().out
    assert EXPECTED_OUTPUT[script] in output, (
        f"{script} ran but its expected output fragment is missing")
