#!/usr/bin/env python
"""Capacity planning: tuned polling vs the forwarding processor (§4.3).

The paper's Table 1 finding, restated as a serving-capacity question:
given the same remote-RPC workload and the same latency/goodput SLO,
how much offered load can each stack tuning sustain?  A bisection
search (:func:`repro.load.find_capacity`) probes deterministic load
scenarios until it brackets the highest SLO-compliant rate.

Tuned ``skip_poll`` decimates the TCP poll tax on every serving rank;
the forwarding processor concentrates TCP polling on one rank — but
that rank is an application rank too, so it pays the full tax *and*
relays everyone else's inter-partition traffic.  Tuned polling should
therefore sustain strictly more load.

Run:  python examples/load_capacity.py
"""

from repro.bench.load import CAPACITY_SLO, TUNED_SKIP, capacity_variants
from repro.load import find_capacity


def main() -> None:
    variants = capacity_variants(quick=True)
    print("capacity search: remote-RPC serving workload, SLO = "
          f"p99 <= {CAPACITY_SLO.p99_latency_us / 1e3:.0f} ms, "
          f"goodput >= {CAPACITY_SLO.min_goodput_fraction:.0%}")

    capacities = {}
    for name in ("tuned-skip-poll", "forwarding"):
        print(f"\n{name}:")
        result = find_capacity(
            variants[name], CAPACITY_SLO, low=200.0, high=6000.0,
            tolerance=0.05, max_probes=6,
            on_probe=lambda probe: print(
                f"  probe {probe.rate:7.1f} RSR/s -> "
                f"{'pass' if probe.passed else 'FAIL'} "
                f"(p99 {probe.p99_us / 1e3:.1f} ms, "
                f"delivered {probe.delivered_rate:.1f}/s)"))
        capacities[name] = result.capacity
        print(f"  => capacity {result.capacity:.1f} RSR/s "
              f"({len(result.probes)} probes)")

    tuned = capacities["tuned-skip-poll"]
    forwarding = capacities["forwarding"]
    print(f"\ntuned skip_poll={TUNED_SKIP}: {tuned:.1f} RSR/s   "
          f"forwarding processor: {forwarding:.1f} RSR/s   "
          f"({tuned / forwarding:.1f}x)")
    assert tuned > forwarding, (
        "tuned polling must sustain more SLO-compliant load than the "
        "forwarding processor")
    print("tuned polling sustains strictly more SLO-compliant load — "
          "the Table 1 ordering, reproduced as capacity.")


if __name__ == "__main__":
    main()
