"""Typed errors for the placement planner."""

from __future__ import annotations


class PlacementError(ValueError):
    """A placement request that cannot be satisfied.

    Raised for malformed specs (bad forwarder index, duplicate ranks in
    an assignment) and for degenerate partition requests (``k`` larger
    than the number of ranks, an empty graph).  A typed error is part of
    the planner's contract: callers sweeping many candidate placements
    must be able to separate "this candidate is invalid" from a genuine
    bug, and tests assert the partitioners never crash with anything
    else.
    """


__all__ = ["PlacementError"]
