"""The RPC runtime: exposing objects and dispatching calls/replies.

One :class:`RpcRuntime` per participating context owns the wire handlers
(``__rpc_call__`` / ``__rpc_reply__``), the reply endpoint, and the
pending-future table.  Server methods may be plain functions *or*
generators — a generator method runs as a simulated process and may
itself communicate (issue RSRs, make nested RPCs) before its reply is
sent, exactly like a threaded Nexus handler.
"""

from __future__ import annotations

import itertools
import typing as _t

from ..core.buffers import Buffer
from ..core.context import Context
from ..core.endpoint import Endpoint
from .errors import RemoteError, RpcError
from .futures import RpcFuture
from .marshal import pack_value, pack_values, unpack_value, unpack_values
from .pointer import GlobalPointer

CALL_HANDLER = "__rpc_call__"
REPLY_HANDLER = "__rpc_reply__"

#: Sequence number used by one-way casts (no reply expected).
NO_REPLY = 0


class RpcRuntime:
    """Per-context RPC state (created on first use)."""

    def __init__(self, context: Context):
        self.context = context
        self.pending: dict[int, RpcFuture] = {}
        self._seq = itertools.count(1)
        self.calls_served = 0
        self.reply_endpoint: Endpoint = context.new_endpoint(
            bound_object=self)
        context.register_handler(CALL_HANDLER, _call_handler)
        context.register_handler(REPLY_HANDLER, _reply_handler)

    @classmethod
    def of(cls, context: Context) -> "RpcRuntime":
        runtime = getattr(context, "_rpc_runtime", None)
        if runtime is None:
            runtime = cls(context)
            context._rpc_runtime = runtime  # type: ignore[attr-defined]
        return runtime

    def next_seq(self) -> int:
        return next(self._seq)

    def reply_pointer(self) -> GlobalPointer:
        """A fresh pointer to this runtime's reply endpoint (packed into
        every request so the server knows where to answer)."""
        return GlobalPointer(
            self.context.startpoint_to(self.reply_endpoint))


def expose(context: Context, obj: object) -> GlobalPointer:
    """Publish ``obj`` at ``context``; returns a global pointer to it.

    The pointer is owned by the serving context; hand it to other
    contexts by packing it into a buffer, passing it as an RPC argument,
    or via :meth:`GlobalPointer.to_wire`.
    """
    RpcRuntime.of(context)
    endpoint = context.new_endpoint(bound_object=obj)
    return GlobalPointer(context.startpoint_to(endpoint))


# ---------------------------------------------------------------------------
# wire handlers
# ---------------------------------------------------------------------------

def _call_handler(context: Context, endpoint: Endpoint | None,
                  buffer: Buffer):
    """Threaded handler: execute the method, then send the reply."""
    assert endpoint is not None
    target = endpoint.bound_object
    seq = buffer.get_int()
    method_name = buffer.get_str()
    wants_reply = seq != NO_REPLY
    reply_pointer: GlobalPointer | None = None
    if wants_reply:
        reply_pointer = _t.cast(GlobalPointer,
                                unpack_value(buffer, context))
    args = unpack_values(buffer, context)
    RpcRuntime.of(context).calls_served += 1

    # Returned generator => dispatch spawns this as a process.
    def run():
        status = 0
        result: object = None
        try:
            method = getattr(target, method_name, None)
            if method is None or method_name.startswith("_"):
                raise RpcError(
                    f"{type(target).__name__} has no callable method "
                    f"{method_name!r}")
            outcome = method(*args)
            if hasattr(outcome, "send"):  # generator method: may block
                outcome = yield from _t.cast(_t.Generator, outcome)
            result = outcome
        except BaseException as exc:  # noqa: BLE001 - marshalled to caller
            status = 1
            result = (type(exc).__name__, str(exc))
        if not wants_reply:
            if status:
                raise RemoteError(*_t.cast(tuple, result))  # surfaced here
            return
        reply = Buffer()
        reply.put_int(seq)
        reply.put_int(status)
        if status:
            remote_type, message = _t.cast(tuple, result)
            reply.put_str(remote_type)
            reply.put_str(message)
        else:
            pack_value(reply, result)
        assert reply_pointer is not None
        yield from reply_pointer.startpoint.rsr(REPLY_HANDLER, reply)

    return run()


def _reply_handler(context: Context, endpoint: Endpoint | None,
                   buffer: Buffer) -> None:
    assert endpoint is not None
    runtime = _t.cast(RpcRuntime, endpoint.bound_object)
    seq = buffer.get_int()
    status = buffer.get_int()
    future = runtime.pending.pop(seq, None)
    if future is None:
        raise RpcError(f"reply for unknown call {seq}")
    if status:
        future.reject(RemoteError(buffer.get_str(), buffer.get_str()))
    else:
        future.resolve(unpack_value(buffer, context))
