"""Machines, partitions, and the wide-area network graph.

The paper's experiments run on one IBM SP2 split into two software
*partitions*: MPL works only within a partition, TCP works anywhere with IP
connectivity.  The I-WAY applications additionally spanned multiple
machines joined by wide-area ATM links.  This module models all of that:

* :class:`Machine` — a parallel computer: a set of :class:`Host` nodes
  joined by an internal switch, with named switch profiles (one
  :class:`LinkProfile` per transport that runs over the switch).
* :class:`Partition` — a named subset of a machine's hosts with a session
  identifier; the MPL transport requires both peers to share a partition
  *and* session, exactly as communication descriptors do in the paper.
* :class:`Network` — the world: machines plus wide-area links between them,
  with shortest-path (by latency) route computation for multi-hop WANs.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from .errors import SimnetError
from .link import LinkProfile
from .node import Host
from .random import derived_generator

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

_session_ids = itertools.count(1000)

#: A fault scope: a single host, every host of a partition, or every
#: host of a machine.
FaultScope = _t.Union["Machine", "Partition", Host]


def _scope_contains(scope: FaultScope, host: Host) -> bool:
    if isinstance(scope, Host):
        return scope is host
    if isinstance(scope, Partition):
        return host.partition is scope
    return host.machine is scope


def _scope_name(scope: FaultScope) -> str:
    return getattr(scope, "name", repr(scope))


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One installed hard fault: traffic between two scopes is severed.

    ``transport=None`` severs every method between the scopes; a name
    severs only that wire method (e.g. fail TCP while UDP survives).
    Faults are bidirectional, like the links they sever.
    """

    a: FaultScope
    b: FaultScope
    transport: str | None = None

    def covers(self, src: Host, dst: Host, transport: str | None) -> bool:
        if self.transport is not None and transport != self.transport:
            return False
        return ((_scope_contains(self.a, src) and _scope_contains(self.b, dst))
                or (_scope_contains(self.a, dst)
                    and _scope_contains(self.b, src)))

    def covers_link(self, link: "WanLink", transport: str | None) -> bool:
        """Does this rule sever a WAN link outright?  Only machine-scoped
        rules do — a host- or partition-scoped fault must not cut the
        link for unrelated hosts of the same machines."""
        if self.transport is not None and transport != self.transport:
            return False
        return ({self.a, self.b} == {link.a, link.b}
                if isinstance(self.a, Machine) and isinstance(self.b, Machine)
                else False)

    def matches(self, a: FaultScope, b: FaultScope,
                transport: str | None) -> bool:
        """Is this the rule ``fail(a, b, transport=...)`` installed?
        (``transport=None`` in :meth:`Network.restore` matches any.)"""
        if transport is not None and self.transport != transport:
            return False
        return {self.a, self.b} == {a, b}


class FlakyRule:
    """A seeded per-message drop rule between two scopes (one direction
    pair, one optional transport).  Each rule owns its own deterministic
    RNG, seeded via :func:`repro.simnet.random.derive` from the rule's
    own identity (scope names + transport), so installations elsewhere —
    or two rules sharing one ``seed`` — never perturb each other's drop
    sequence."""

    def __init__(self, a: FaultScope, b: FaultScope, transport: str | None,
                 drop_probability: float, seed: int):
        if not (0.0 <= drop_probability <= 1.0):
            raise SimnetError(
                f"bad flaky drop probability {drop_probability!r}")
        self.a = a
        self.b = b
        self.transport = transport
        self.drop_probability = drop_probability
        self.rng = derived_generator(seed, "flaky", _scope_name(a),
                                     _scope_name(b), transport or "*")

    def covers(self, src: Host, dst: Host, transport: str | None) -> bool:
        if self.transport is not None and transport != self.transport:
            return False
        return ((_scope_contains(self.a, src) and _scope_contains(self.b, dst))
                or (_scope_contains(self.a, dst)
                    and _scope_contains(self.b, src)))


class Partition:
    """A software partition of a machine (SP2-style).

    Each partition carries a globally unique ``session`` identifier — the
    paper notes MPL communication descriptors include a session id used to
    distinguish SP partitions.
    """

    def __init__(self, machine: "Machine", name: str):
        self.machine = machine
        self.name = name
        self.session: int = next(_session_ids)
        self.hosts: list[Host] = []

    def add(self, host: Host) -> None:
        if host.machine is not self.machine:
            raise SimnetError(
                f"host {host.name!r} belongs to a different machine"
            )
        if host.partition is not None:
            raise SimnetError(f"host {host.name!r} is already in a partition")
        host.partition = self
        self.hosts.append(host)

    def __contains__(self, host: Host) -> bool:
        return host.partition is self

    def __len__(self) -> int:
        return len(self.hosts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Partition {self.name!r} session={self.session} "
                f"hosts={len(self.hosts)}>")


class Machine:
    """A parallel computer: hosts + internal switch profiles."""

    def __init__(self, sim: "Simulator", name: str,
                 switch_profiles: _t.Mapping[str, LinkProfile] | None = None):
        self.sim = sim
        self.name = name
        self.hosts: list[Host] = []
        self.partitions: list[Partition] = []
        #: transport name -> profile for traffic over this machine's switch.
        self.switch_profiles: dict[str, LinkProfile] = dict(switch_profiles or {})

    def new_host(self, name: str | None = None, cpu_capacity: int = 1) -> Host:
        host = Host(self.sim, name or f"{self.name}/n{len(self.hosts)}",
                    machine=self, cpu_capacity=cpu_capacity)
        self.hosts.append(host)
        return host

    def new_hosts(self, count: int, prefix: str | None = None) -> list[Host]:
        return [self.new_host(f"{prefix or self.name}/n{len(self.hosts)}")
                for _ in range(count)]

    def new_partition(self, name: str, hosts: _t.Iterable[Host]) -> Partition:
        partition = Partition(self, name)
        for host in hosts:
            partition.add(host)
        self.partitions.append(partition)
        return partition

    def switch_profile(self, transport: str) -> LinkProfile | None:
        return self.switch_profiles.get(transport)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Machine {self.name!r} hosts={len(self.hosts)} "
                f"partitions={len(self.partitions)}>")


class WanLink:
    """A (bidirectional) wide-area link between two machines.

    ``transports`` optionally restricts which communication methods may
    route over this link (e.g. a provisioned ATM PVC carries only AAL-5
    while a routed internet path carries TCP/UDP); ``None`` admits any.
    """

    def __init__(self, a: Machine, b: Machine, profile: LinkProfile,
                 transports: _t.Collection[str] | None = None):
        self.a = a
        self.b = b
        self.profile = profile
        #: The healthy profile; :meth:`Network.degrade` always scales from
        #: this, so degradations are absolute (idempotent) and factors of
        #: 1.0 restore the original object exactly.
        self.base_profile = profile
        self.transports = frozenset(transports) if transports is not None else None
        #: Bandwidth currently committed to QoS reservations (bytes/s).
        self.reserved_bandwidth = 0.0

    def carries(self, transport: str | None) -> bool:
        return (transport is None or self.transports is None
                or transport in self.transports)

    @property
    def available_bandwidth(self) -> float:
        """Bandwidth not committed to reservations."""
        return max(self.profile.bandwidth - self.reserved_bandwidth, 0.0)

    def other(self, machine: Machine) -> Machine:
        if machine is self.a:
            return self.b
        if machine is self.b:
            return self.a
        raise SimnetError(f"{machine!r} is not an endpoint of this link")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WanLink {self.a.name}<->{self.b.name} {self.profile.name}>"


class Reservation:
    """A QoS bandwidth reservation along a WAN route (Section 2's
    "channel-based QoS reservation", RSVP-style).

    Holds ``bandwidth`` bytes/s on every link of the reserved route
    until :meth:`release`.  Transports honour reservations through the
    ``reserved_bandwidth`` descriptor parameter (see
    :meth:`repro.transports.ipbase.IpTransport.send`).
    """

    _ids = itertools.count(1)

    def __init__(self, network: "Network", links: list[WanLink],
                 bandwidth: float):
        self.id: int = next(Reservation._ids)
        self.network = network
        self.links = links
        self.bandwidth = bandwidth
        self.active = True

    def release(self) -> None:
        """Return the reserved bandwidth to the links (idempotent)."""
        if not self.active:
            return
        for link in self.links:
            link.reserved_bandwidth -= self.bandwidth
        self.active = False
        self.network.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else "released"
        return (f"<Reservation {self.id} {state} "
                f"bw={self.bandwidth:.0f} B/s links={len(self.links)}>")


class Network:
    """The simulated world: machines joined by wide-area links."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.machines: list[Machine] = []
        self._links: list[WanLink] = []
        self._adjacency: dict[Machine, list[WanLink]] = {}
        #: Bumped whenever link characteristics change; transports use it
        #: to invalidate cached effective profiles (outage modelling).
        self.epoch = 0
        #: Installed hard faults (see :meth:`fail`); empty on the happy
        #: path so transports can skip fault checks with one truth test.
        self._fault_rules: list[FaultRule] = []
        #: Installed seeded flaky-drop rules (see :meth:`set_flaky`).
        self._flaky_rules: list[FlakyRule] = []

    # -- construction ------------------------------------------------------

    def new_machine(self, name: str,
                    switch_profiles: _t.Mapping[str, LinkProfile] | None = None
                    ) -> Machine:
        machine = Machine(self.sim, name, switch_profiles)
        self.machines.append(machine)
        self._adjacency[machine] = []
        return machine

    def connect(self, a: Machine, b: Machine, profile: LinkProfile,
                transports: _t.Collection[str] | None = None) -> WanLink:
        """Join two machines with a wide-area link (optionally restricted
        to specific transports)."""
        if a is b:
            raise SimnetError("cannot connect a machine to itself")
        for machine in (a, b):
            if machine not in self._adjacency:
                raise SimnetError(f"{machine!r} is not part of this network")
        link = WanLink(a, b, profile, transports)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        return link

    @property
    def hosts(self) -> list[Host]:
        return [h for m in self.machines for h in m.hosts]

    def degrade(self, a: Machine, b: Machine, *,
                latency_factor: float = 1.0,
                bandwidth_factor: float = 1.0,
                transport: str | None = None) -> None:
        """Degrade (or restore) direct links between two machines.

        With ``transport`` given, only links carrying that method are
        touched (e.g. fail the ATM circuit while the routed-IP path stays
        healthy).  Transports re-resolve their cached path profiles
        because :attr:`epoch` changes.
        """
        changed = False
        for link in self._links:
            if {link.a, link.b} == {a, b} and link.carries(transport):
                # Scale from the pristine base profile, never the current
                # one: repeated calls are idempotent and factors of 1.0
                # restore the healthy profile exactly.
                if latency_factor == 1.0 and bandwidth_factor == 1.0:
                    link.profile = link.base_profile
                else:
                    link.profile = link.base_profile.scaled(
                        latency_factor=latency_factor,
                        bandwidth_factor=bandwidth_factor,
                        name=link.base_profile.name,
                    )
                changed = True
        if not changed:
            raise SimnetError(
                f"no link between {a.name!r} and {b.name!r} to degrade"
            )
        self.epoch += 1

    # -- fault injection ---------------------------------------------------

    def fail(self, a: FaultScope, b: FaultScope, *,
             transport: str | None = None) -> None:
        """Sever communication between two scopes (hosts, partitions, or
        machines), either for one wire method or for all of them.

        Fail-stop at admission: messages already serialised onto the wire
        still arrive, but every later send attempt raises
        :class:`~repro.transports.base.DeliveryError` (routed transports)
        or is refused outright (switch transports).  Idempotent.
        """
        if any({existing.a, existing.b} == {a, b}
               and existing.transport == transport
               for existing in self._fault_rules):
            return
        self._fault_rules.append(FaultRule(a, b, transport))
        self.epoch += 1

    def restore(self, a: FaultScope, b: FaultScope, *,
                transport: str | None = None) -> None:
        """Undo :meth:`fail` between two scopes.  ``transport=None``
        lifts every fault between them; a name lifts just that method's.
        Idempotent — restoring a healthy pair is a no-op."""
        kept = [rule for rule in self._fault_rules
                if not rule.matches(a, b, transport)]
        if len(kept) != len(self._fault_rules):
            self._fault_rules = kept
            self.epoch += 1

    def is_faulted(self, src: Host, dst: Host,
                   transport: str | None = None) -> bool:
        """Is traffic from ``src`` to ``dst`` over ``transport`` severed
        by an installed hard fault?  (``transport=None``: by any-method
        faults only.)"""
        return any(rule.covers(src, dst, transport)
                   for rule in self._fault_rules)

    def set_flaky(self, a: FaultScope, b: FaultScope, *,
                  drop_probability: float, seed: int = 0,
                  transport: str | None = None) -> FlakyRule:
        """Install (or replace) a seeded per-message drop rule between
        two scopes.  Each send covered by the rule rolls the rule's own
        deterministic RNG; rolls below ``drop_probability`` fail that
        delivery.  Returns the installed rule."""
        self._flaky_rules = [
            rule for rule in self._flaky_rules
            if not ({rule.a, rule.b} == {a, b}
                    and rule.transport == transport)]
        rule = FlakyRule(a, b, transport, drop_probability, seed)
        self._flaky_rules.append(rule)
        return rule

    def clear_flaky(self, a: FaultScope, b: FaultScope, *,
                    transport: str | None = None) -> None:
        """Remove any flaky-drop rule between two scopes (idempotent)."""
        self._flaky_rules = [
            rule for rule in self._flaky_rules
            if not ({rule.a, rule.b} == {a, b}
                    and (transport is None or rule.transport == transport))]

    def fault_drop(self, src: Host, dst: Host,
                   transport: str | None = None) -> bool:
        """Roll every flaky rule covering this send; True means the
        message is lost.  Deterministic: each rule's RNG advances once
        per covered send, in installation order."""
        dropped = False
        for rule in self._flaky_rules:
            if rule.covers(src, dst, transport):
                if rule.rng.random() < rule.drop_probability:
                    dropped = True
        return dropped

    # -- routing -------------------------------------------------------------

    def wan_route(self, src: Machine, dst: Machine,
                  transport: str | None = None) -> list[WanLink] | None:
        """Lowest-total-latency route between machines (Dijkstra) over
        links that carry ``transport``, or None.  ``[]`` when src is dst.
        """
        if src is dst:
            return []
        import heapq

        dist: dict[Machine, float] = {src: 0.0}
        prev: dict[Machine, tuple[Machine, WanLink]] = {}
        heap: list[tuple[float, int, Machine]] = [(0.0, id(src), src)]
        visited: set[int] = set()
        while heap:
            d, _tie, machine = heapq.heappop(heap)
            if id(machine) in visited:
                continue
            visited.add(id(machine))
            if machine is dst:
                route: list[WanLink] = []
                cursor = dst
                while cursor is not src:
                    parent, link = prev[cursor]
                    route.append(link)
                    cursor = parent
                route.reverse()
                return route
            for link in self._adjacency[machine]:
                if not link.carries(transport):
                    continue
                if self._fault_rules and any(
                        rule.covers_link(link, transport)
                        for rule in self._fault_rules):
                    continue
                neighbour = link.other(machine)
                nd = d + link.profile.latency
                if nd < dist.get(neighbour, float("inf")):
                    dist[neighbour] = nd
                    prev[neighbour] = (machine, link)
                    heapq.heappush(heap, (nd, id(neighbour), neighbour))
        return None

    def wan_path_profile(self, src: Machine, dst: Machine,
                         transport: str | None = None) -> LinkProfile | None:
        """Collapse a multi-hop WAN route to one effective profile.

        Latencies add; bandwidth is the bottleneck link's.  Returns ``None``
        when the machines are not connected (for ``transport``).
        """
        route = self.wan_route(src, dst, transport)
        if route is None:
            return None
        if not route:
            raise SimnetError("wan_path_profile() called for a single machine")
        return LinkProfile(
            name="+".join(link.profile.name for link in route),
            latency=sum(link.profile.latency for link in route),
            bandwidth=min(link.profile.bandwidth for link in route),
            send_overhead=route[0].profile.send_overhead,
            recv_overhead=route[-1].profile.recv_overhead,
        )

    # -- QoS reservations -----------------------------------------------------

    def reserve(self, a: Machine, b: Machine, bandwidth: float,
                transport: str | None = None) -> Reservation:
        """Reserve ``bandwidth`` along the best route between two machines.

        Raises :class:`SimnetError` if any link on the route lacks that
        much uncommitted bandwidth (admission control).
        """
        if bandwidth <= 0:
            raise SimnetError(f"reservation bandwidth must be positive, "
                              f"got {bandwidth!r}")
        route = self.wan_route(a, b, transport)
        if not route:
            raise SimnetError(
                f"no reservable route between {a.name!r} and {b.name!r}")
        for link in route:
            if link.available_bandwidth < bandwidth:
                raise SimnetError(
                    f"admission control: link {link.profile.name!r} has "
                    f"only {link.available_bandwidth:.0f} B/s available, "
                    f"{bandwidth:.0f} requested")
        for link in route:
            link.reserved_bandwidth += bandwidth
        self.epoch += 1
        return Reservation(self, route, bandwidth)

    def available_bandwidth(self, a: Host, b: Host,
                            transport: str | None = None) -> float | None:
        """Uncommitted bandwidth between two hosts (None if unreachable).

        This is what a QoS-aware selection policy consults: "looking at
        available network bandwidth rather than raw bandwidth" (§3.2).
        """
        if self._fault_rules and self.is_faulted(a, b, transport):
            return None
        if a.machine is b.machine:
            assert a.machine is not None
            if transport is not None:
                profile = a.machine.switch_profile(transport)
                return profile.bandwidth if profile else None
            return float("inf")
        assert a.machine is not None and b.machine is not None
        route = self.wan_route(a.machine, b.machine, transport)
        if route is None:
            return None
        return min(link.available_bandwidth for link in route)

    # -- reachability predicates ---------------------------------------------

    def ip_connected(self, a: Host, b: Host,
                     transport: str | None = None) -> bool:
        """True if a routed transport can reach ``b`` from ``a``."""
        if self._fault_rules and self.is_faulted(a, b, transport):
            return False
        if a.machine is b.machine:
            return True
        assert a.machine is not None and b.machine is not None
        return self.wan_route(a.machine, b.machine, transport) is not None

    def effective_profile(self, transport: str, a: Host, b: Host
                          ) -> LinkProfile | None:
        """Profile a routed transport should use between two hosts.

        Same machine → that machine's switch profile for ``transport``;
        different machines → the collapsed WAN path profile over links
        carrying ``transport`` (if connected).  ``None`` while a hard
        fault severs the pair.
        """
        if self._fault_rules and self.is_faulted(a, b, transport):
            return None
        if a.machine is b.machine:
            assert a.machine is not None
            return a.machine.switch_profile(transport)
        assert a.machine is not None and b.machine is not None
        return self.wan_path_profile(a.machine, b.machine, transport)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Network machines={len(self.machines)} "
                f"links={len(self._links)}>")
