"""Tests for the per-(remote, method) health state machine:
UP -> DOWN -> PROBE -> UP/DOWN."""

import pytest

from repro.core.errors import NexusError
from repro.core.health import HealthConfig, HealthTracker

REMOTE = 7


@pytest.fixture
def tracker(sim):
    return HealthTracker(sim, HealthConfig(failure_threshold=3,
                                           cooloff=0.5))


def advance(sim, dt):
    sim.run(until=sim.timeout(dt))


def transitions(tracker):
    return [(method, transition)
            for _t, _r, method, transition in tracker.events]


class TestDownTransition:
    def test_down_after_threshold_consecutive_failures(self, tracker):
        for _ in range(2):
            tracker.record_failure(REMOTE, "tcp")
            assert not tracker.is_down(REMOTE, "tcp")
        assert tracker.record_failure(REMOTE, "tcp") is True
        assert tracker.is_down(REMOTE, "tcp")
        assert transitions(tracker) == [("tcp", "down")]

    def test_success_resets_the_streak(self, tracker):
        tracker.record_failure(REMOTE, "tcp")
        tracker.record_failure(REMOTE, "tcp")
        tracker.record_success(REMOTE, "tcp")
        tracker.record_failure(REMOTE, "tcp")
        tracker.record_failure(REMOTE, "tcp")
        assert not tracker.is_down(REMOTE, "tcp")
        assert tracker.events == [], "sub-threshold churn logs nothing"

    def test_keys_are_independent(self, tracker):
        for _ in range(3):
            tracker.record_failure(REMOTE, "tcp")
        assert not tracker.is_down(REMOTE, "udp")
        assert not tracker.is_down(REMOTE + 1, "tcp")
        assert tracker.down_methods(REMOTE) == ("tcp",)
        assert tracker.down_methods(REMOTE + 1) == ()

    def test_mark_down_seeds_directly(self, tracker):
        tracker.mark_down(REMOTE, "tcp")
        assert tracker.is_down(REMOTE, "tcp")
        epoch = tracker.epoch
        tracker.mark_down(REMOTE, "tcp")
        assert tracker.epoch == epoch, "re-marking is a no-op"


class TestProbeCycle:
    def test_cooloff_flips_down_to_probe(self, sim, tracker):
        tracker.mark_down(REMOTE, "tcp")
        advance(sim, 0.25)
        assert tracker.is_down(REMOTE, "tcp"), "cool-off not yet elapsed"
        advance(sim, 0.25)
        assert not tracker.is_down(REMOTE, "tcp"), "next send is the probe"
        assert tracker.in_probe(REMOTE, "tcp")
        assert transitions(tracker) == [("tcp", "down"), ("tcp", "probe")]

    def test_probe_success_re_enables(self, sim, tracker):
        tracker.mark_down(REMOTE, "tcp")
        advance(sim, 0.5)
        tracker.is_down(REMOTE, "tcp")
        tracker.record_success(REMOTE, "tcp")
        assert not tracker.in_probe(REMOTE, "tcp")
        assert tracker.snapshot() == []
        assert transitions(tracker)[-1] == ("tcp", "up")

    def test_probe_failure_re_downs_immediately(self, sim, tracker):
        tracker.mark_down(REMOTE, "tcp")
        advance(sim, 0.5)
        tracker.is_down(REMOTE, "tcp")
        assert tracker.record_failure(REMOTE, "tcp") is True
        assert tracker.is_down(REMOTE, "tcp"), \
            "one failed probe re-downs without a fresh threshold"
        assert transitions(tracker)[-1] == ("tcp", "probe_failed")
        # The cool-off restarts from the failed probe, not the first down.
        advance(sim, 0.4)
        assert tracker.is_down(REMOTE, "tcp")
        advance(sim, 0.1)
        assert not tracker.is_down(REMOTE, "tcp")


class TestFastPath:
    def test_epoch_bumps_only_on_transitions(self, tracker):
        assert tracker.epoch == 0
        tracker.record_failure(REMOTE, "tcp")
        assert tracker.epoch == 0
        tracker.record_failure(REMOTE, "tcp")
        tracker.record_failure(REMOTE, "tcp")
        assert tracker.epoch == 1

    def test_next_probe_at_tracks_earliest_down(self, sim, tracker):
        assert tracker.next_probe_at == float("inf")
        tracker.mark_down(REMOTE, "tcp")
        assert tracker.next_probe_at == pytest.approx(0.5)
        advance(sim, 0.2)
        tracker.mark_down(REMOTE, "udp")
        assert tracker.next_probe_at == pytest.approx(0.5), \
            "earliest probeable entry wins"
        advance(sim, 0.3)
        tracker.is_down(REMOTE, "tcp")  # flips tcp to PROBE
        assert tracker.next_probe_at == pytest.approx(0.7)
        tracker.record_success(REMOTE, "tcp")
        tracker.is_down(REMOTE, "udp")
        advance(sim, 0.2)
        tracker.is_down(REMOTE, "udp")
        tracker.record_success(REMOTE, "udp")
        assert tracker.next_probe_at == float("inf")

    def test_snapshot_lists_non_up_entries(self, tracker):
        tracker.record_failure(REMOTE, "tcp")
        tracker.mark_down(REMOTE, "udp")
        rows = tracker.snapshot()
        assert [(r["method"], r["state"]) for r in rows] == [
            ("tcp", "degraded"), ("udp", "down")]


class TestConfigValidation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(NexusError):
            HealthConfig(failure_threshold=0)

    def test_bad_cooloff_rejected(self):
        with pytest.raises(NexusError):
            HealthConfig(cooloff=0.0)
