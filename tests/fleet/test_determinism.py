"""The determinism contract: parallel execution changes nothing.

These tests run real work through a real spawned pool (the shared
session fixture), so they are the slowest in the fleet tier — each one
asserts byte equality between a serial run and a parallel run of the
same plan.
"""

from repro.bench.record import BenchRecord
from repro.fleet import (
    BenchFanout,
    ScenarioGrid,
    canonical_json,
    merge_bench_outcomes,
    merge_load_results,
    run_plan,
)
from repro.load import FixedSize, FleetSpec, LoadScenario, OpenLoop, SLO
from repro.load.capacity import find_capacity


def _scenario():
    return LoadScenario(
        name="tiny",
        fleets=(FleetSpec("rpc", clients=2, arrival=OpenLoop(rate=40.0),
                          sizes=FixedSize(512), route="remote",
                          service_ops=5, service_time=100e-6),),
        duration=0.05, seed=7)


class TestGridDeterminism:
    def test_serial_and_pool_merge_byte_identical(self, fleet_pool):
        grid = ScenarioGrid(name="g", base=_scenario(),
                            factors=(0.5, 0.75, 1.0, 1.25))
        serial = run_plan(grid, jobs=1)
        pooled = run_plan(grid, jobs=2, pool=fleet_pool)
        assert serial.ok and pooled.ok
        assert (canonical_json(merge_load_results(serial.outcomes,
                                                  plan=grid.name))
                == canonical_json(merge_load_results(pooled.outcomes,
                                                     plan=grid.name)))


class TestBenchFanoutDeterminism:
    def test_merged_records_byte_identical(self, fleet_pool):
        plan = BenchFanout(artefacts=("figure4", "table1"), quick=True)
        serial = run_plan(plan, jobs=1)
        pooled = run_plan(plan, jobs=2, pool=fleet_pool)

        record_a = BenchRecord("fleet", quick=True)
        merged_a = merge_bench_outcomes(record_a, serial.outcomes)
        record_b = BenchRecord("fleet", quick=True)
        merged_b = merge_bench_outcomes(record_b, pooled.outcomes)

        # The record documents (what --record writes) match bytewise.
        assert record_a.dumps() == record_b.dumps()
        # So does the replayed stdout, artefact by artefact.
        assert ([(r.name, r.stdout) for r in merged_a]
                == [(r.name, r.stdout) for r in merged_b])


class TestSpeculativeCapacity:
    """find_capacity(parallel=k) is an *optimisation*, not a variant:

    same capacity, same first failing rate, same probe sequence, same
    verdicts — on every Table-1 tuning.
    """

    def test_parallel_matches_serial_on_table1_configs(self, fleet_pool):
        from repro.bench.load import CAPACITY_SLO, capacity_variants

        for name, variant in capacity_variants(quick=True).items():
            kwargs = dict(low=200.0, high=6000.0, tolerance=0.05,
                          max_probes=6)
            serial = find_capacity(variant, CAPACITY_SLO, **kwargs)
            parallel = find_capacity(variant, CAPACITY_SLO,
                                     parallel=4, pool=fleet_pool,
                                     **kwargs)
            assert parallel.capacity == serial.capacity, name
            assert (parallel.first_failing_rate
                    == serial.first_failing_rate), name
            assert ([p.rate for p in parallel.probes]
                    == [p.rate for p in serial.probes]), name
            assert ([p.passed for p in parallel.probes]
                    == [p.passed for p in serial.probes]), name

    def test_on_probe_sees_serial_sequence(self, fleet_pool):
        scenario = _scenario()
        slo = SLO(name="tight", p99_latency_us=50_000.0,
                  min_goodput_fraction=0.9)
        kwargs = dict(low=50.0, high=2000.0, tolerance=0.2, max_probes=4)
        seen_serial, seen_parallel = [], []
        find_capacity(scenario, slo, on_probe=seen_serial.append,
                      **kwargs)
        find_capacity(scenario, slo, on_probe=seen_parallel.append,
                      parallel=2, pool=fleet_pool, **kwargs)
        assert ([p.rate for p in seen_parallel]
                == [p.rate for p in seen_serial])
