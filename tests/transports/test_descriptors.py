"""Tests for communication descriptors and cost models."""

import pytest

from repro.transports.base import Descriptor
from repro.transports.costmodels import (
    DEFAULT_COSTS,
    DEFAULT_RUNTIME_COSTS,
    MPL_COSTS,
    TCP_COSTS,
    TransportCosts,
)
from repro.util.units import mbps, microseconds


class TestDescriptor:
    def test_param_lookup(self):
        d = Descriptor("mpl", 5, (("node", 3), ("session", 1001)))
        assert d.param("node") == 3
        assert d.param("missing") is None
        assert d.param("missing", "dflt") == "dflt"

    def test_with_param_replaces(self):
        d = Descriptor("tcp", 5, (("host", 1),))
        via = d.with_param("via", 9)
        assert via.param("via") == 9
        assert via.param("host") == 1
        assert d.param("via") is None  # original untouched
        replaced = via.with_param("via", 10)
        assert replaced.param("via") == 10
        assert len(replaced.params) == 2

    def test_wire_roundtrip(self):
        d = Descriptor("mpl", 7, (("node", 3), ("session", 1002)))
        assert Descriptor.from_wire(d.to_wire()) == d

    def test_wire_size_is_tens_of_bytes(self):
        d = Descriptor("mpl", 7, (("node", 3), ("session", 1002)))
        assert 10 <= d.wire_size <= 100

    def test_hashable(self):
        d1 = Descriptor("tcp", 1, (("host", 1),))
        d2 = Descriptor("tcp", 1, (("host", 1),))
        assert d1 == d2 and hash(d1) == hash(d2)
        assert len({d1, d2}) == 1


class TestCostModels:
    def test_paper_constants(self):
        """The calibration constants Section 3.3/4 reports must hold."""
        assert MPL_COSTS.bandwidth == mbps(36.0)
        assert MPL_COSTS.poll_cost == microseconds(15.0)
        assert TCP_COSTS.bandwidth == mbps(8.0)
        assert TCP_COSTS.poll_cost > microseconds(100.0)

    def test_tcp_steals_device_time_mpl_does_not(self):
        assert TCP_COSTS.steals_device_time
        assert not MPL_COSTS.steals_device_time

    def test_default_costs_cover_all_builtins(self):
        from repro.transports.registry import BUILTIN_TRANSPORTS
        from repro.transports.secure import SECURE_TCP_COSTS
        extras = {"stcp": SECURE_TCP_COSTS}  # registry-level default
        for name in BUILTIN_TRANSPORTS:
            assert name in DEFAULT_COSTS or name in extras, (
                f"no cost model for {name}")

    def test_replace(self):
        modified = TCP_COSTS.replace(poll_cost=1e-6)
        assert modified.poll_cost == 1e-6
        assert modified.bandwidth == TCP_COSTS.bandwidth
        assert TCP_COSTS.poll_cost > 1e-6  # original frozen

    def test_runtime_costs_sane(self):
        rc = DEFAULT_RUNTIME_COSTS
        assert 0.0 < rc.select_drain_overlap < 1.0
        assert rc.header_bytes > 0
        assert rc.poll_loop_cost > 0.0

    def test_costs_are_frozen(self):
        with pytest.raises(Exception):
            TCP_COSTS.poll_cost = 0.0  # type: ignore[misc]

    def test_custom_costs(self):
        costs = TransportCosts(latency=1e-3, bandwidth=1e6, poll_cost=1e-5)
        assert costs.send_overhead == 0.0
        assert costs.reliable
