"""Placement specs: normalization, scenario compilation, the
deprecation shim, and the exported plan document."""

import json
import warnings

import pytest

from repro.load import FixedSize, FleetSpec, LoadScenario, OpenLoop
from repro.load.scenario import LoadSpecError
from repro.obs.validate import (
    TraceValidationError,
    validate_placement_document,
)
from repro.place import (
    Placement,
    PlacementError,
    compile_scenario,
    direct_placement,
    dumps_placement,
    forwarding_placement,
    placement_document,
    write_placement,
)


def scenario(**overrides):
    spec = dict(
        name="plan-test",
        fleets=(FleetSpec("rpc", clients=2, arrival=OpenLoop(rate=40.0),
                          sizes=FixedSize(1024), route="remote"),),
        duration=0.1, remote_servers=3)
    spec.update(overrides)
    return LoadScenario(**spec)


class TestPlacementSpec:
    def test_assignment_normalises_to_sorted_tuples(self):
        placement = Placement(assignment=((3, "B"), (1, "A")))
        assert placement.assignment == ((1, "A"), (3, "B"))
        assert placement.assignment_map() == {1: "A", 3: "B"}

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(PlacementError, match="repeats ranks"):
            Placement(assignment=((0, "A"), (0, "B")))

    def test_negative_forwarder_rejected(self):
        with pytest.raises(PlacementError, match=">= 0"):
            Placement(forwarder=-1)

    def test_empty_method_rejected(self):
        with pytest.raises(PlacementError, match="non-empty"):
            Placement(method="")

    def test_describe_names_the_route(self):
        assert direct_placement().describe() == "direct/tcp"
        assert forwarding_placement(forwarder=2).describe() \
            == "forward@2 (tcp->mpl)"


class TestCompileScenario:
    def test_placement_installs_and_mirrors_forwarding(self):
        compiled = compile_scenario(scenario(),
                                    forwarding_placement(forwarder=1))
        assert compiled.placement.forwarder == 1
        assert compiled.forwarding  # read-only legacy mirror
        direct = compile_scenario(scenario(), direct_placement())
        assert not direct.forwarding

    def test_forwarder_must_index_a_serving_rank(self):
        with pytest.raises(LoadSpecError, match="forwarder"):
            compile_scenario(scenario(remote_servers=2),
                             forwarding_placement(forwarder=2))

    def test_methods_must_be_in_the_transport_set(self):
        with pytest.raises(LoadSpecError, match="transport"):
            compile_scenario(scenario(),
                             forwarding_placement(fast_method="warp"))


class TestDeprecationShim:
    def test_bare_forwarding_true_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="forwarding=True"):
            legacy = scenario(forwarding=True)
        assert legacy.placement == forwarding_placement()

    def test_explicit_placement_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            explicit = scenario(placement=forwarding_placement())
        assert explicit.forwarding

    def test_scaled_copies_do_not_rewarn(self):
        with pytest.warns(DeprecationWarning):
            legacy = scenario(forwarding=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scaled = legacy.at_rate(100.0)
        assert scaled.placement == forwarding_placement()


class TestPlanDocument:
    def test_document_round_trips_through_the_validator(self):
        placement = forwarding_placement(forwarder=2)
        placement = Placement(assignment=((0, "P0"), (1, "P1")),
                              forwarder=2)
        document = json.loads(dumps_placement(placement,
                                              meta={"note": "test"}))
        summary = validate_placement_document(document)
        assert summary["forwarder"] == 2
        assert summary["ranks"] == 2

    def test_dumps_is_byte_deterministic(self):
        placement = forwarding_placement()
        assert dumps_placement(placement) == dumps_placement(placement)

    def test_write_and_sniff(self, tmp_path):
        from repro.obs.validate import validate_file

        path = tmp_path / "placement.json"
        write_placement(str(path), direct_placement())
        kind, summary = validate_file(str(path))
        assert kind == "plan"
        assert summary["forwarder"] is None

    def test_validator_rejects_duplicate_assignment_ranks(self):
        document = placement_document(direct_placement())
        document["assignment"] = [[0, "A"], [0, "B"]]
        with pytest.raises(TraceValidationError, match="repeats rank"):
            validate_placement_document(document)

    def test_validator_rejects_bad_forwarder(self):
        document = placement_document(direct_placement())
        document["forwarder"] = -3
        with pytest.raises(TraceValidationError, match="forwarder"):
            validate_placement_document(document)
