"""Deterministic merge: completion order in, task-key order out.

Workers finish in whatever order the scheduler produces; everything a
fleet run publishes — merged bench records, load summaries, stream
manifests — is ordered by **task key** instead, so ``--jobs 1`` and
``--jobs 8`` emit byte-identical documents.  The rules:

* merge inputs are keyed outcomes; iteration is always ``sorted(keys)``;
* merged documents are sorted-key JSON with no timestamps, worker ids,
  or absolute paths (spool directories appear as key slugs only);
* a failed task never merges silently: :func:`require_ok` raises the
  first :class:`~repro.fleet.pool.FleetTaskError` in key order, with
  its remote traceback attached.
"""

from __future__ import annotations

import hashlib
import json
import typing as _t

from .pool import FleetTaskError, TaskOutcome

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..bench.record import BenchRecord
    from ..load.clients import LoadResult

#: Merged load-summary document identity.
LOAD_SUMMARY_SCHEMA = "repro.fleet.load_summary"
LOAD_SUMMARY_SCHEMA_VERSION = 1


def require_ok(outcomes: _t.Mapping[str, TaskOutcome]) -> None:
    """Raise the first failed outcome's error, in task-key order."""
    for key in sorted(outcomes):
        error = outcomes[key].error
        if error is not None:
            raise error


def ordered_results(outcomes: _t.Mapping[str, TaskOutcome]
                    ) -> dict[str, object]:
    """Key-ordered ``{key: result}``; every outcome must be ok."""
    require_ok(outcomes)
    return {key: outcomes[key].result for key in sorted(outcomes)}


# -- load results -------------------------------------------------------------

def load_result_summary(result: "LoadResult") -> dict[str, object]:
    """One task's deterministic scalar summary.

    Spool paths are dropped (they differ between output roots); the
    spool's content identity lives in the merged stream manifest, not
    here.
    """
    summary: dict[str, object] = {
        "scenario": result.scenario.name,
        "seed": result.scenario.seed,
        "duration_s": result.scenario.duration,
        "offered": result.offered,
        "delivered": result.delivered,
        "offered_rate": result.offered_rate,
        "delivered_rate": result.delivered_rate,
        "p50_us": result.quantile_us(0.5),
        "p99_us": result.quantile_us(0.99),
        "retries": result.retries,
        "failovers": result.failovers,
        "messages_dropped": result.messages_dropped,
        "bytes_dropped": result.bytes_dropped,
        "sim_events": result.sim_events,
        "fleets": {name: {"offered": fleet.offered,
                          "delivered": fleet.delivered,
                          "acked": fleet.acked,
                          "send_failures": fleet.send_failures}
                   for name, fleet in sorted(result.fleets.items())},
    }
    if result.stream is not None:
        summary["stream"] = {
            name: value for name, value in sorted(result.stream.items())
            if name != "directory"
        }
    return summary


def merge_load_results(outcomes: _t.Mapping[str, TaskOutcome], *,
                       plan: str = "adhoc", jobs: int | None = None
                       ) -> dict[str, object]:
    """The merged fleet document for a scenario/seed plan.

    ``jobs`` is deliberately **not** recorded — the document must be a
    pure function of the plan, never of how it was executed.
    """
    del jobs  # accepted for call-site symmetry; never recorded
    results = _t.cast("dict[str, LoadResult]", ordered_results(outcomes))
    tasks = {key: load_result_summary(result)
             for key, result in results.items()}
    return {
        "schema": LOAD_SUMMARY_SCHEMA,
        "schema_version": LOAD_SUMMARY_SCHEMA_VERSION,
        "plan": plan,
        "tasks": tasks,
        "totals": {
            "tasks": len(tasks),
            "offered": sum(r.offered for r in results.values()),
            "delivered": sum(r.delivered for r in results.values()),
            "retries": sum(r.retries for r in results.values()),
            "messages_dropped": sum(r.messages_dropped
                                    for r in results.values()),
            "sim_events": sum(r.sim_events for r in results.values()),
        },
    }


# -- bench records ------------------------------------------------------------

def merge_bench_outcomes(record: "BenchRecord",
                         outcomes: _t.Mapping[str, TaskOutcome]
                         ) -> list:
    """Absorb bench-artefact fragments into ``record``, key-ordered.

    Returns the :class:`~repro.fleet.tasks.BenchArtefactResult` list in
    key order so the caller can replay captured stdout and wall times.
    Because :meth:`BenchRecord.to_document` sorts artefacts and metric
    names, absorbing in key order (or any order — the document is
    order-free) reproduces the serial run's bytes exactly; key order is
    still used so duplicate-metric errors surface deterministically.
    """
    require_ok(outcomes)
    merged = []
    for key in sorted(outcomes):
        artefact = outcomes[key].result
        record.absorb(artefact.fragments)
        merged.append(artefact)
    return merged


# -- canonical bytes ----------------------------------------------------------

def canonical_json(document: _t.Mapping[str, object]) -> str:
    """The one serialisation merged documents are written and compared in."""
    return json.dumps(document, sort_keys=True, indent=1) + "\n"


def document_digest(document: _t.Mapping[str, object]) -> str:
    """sha256 of the canonical serialisation (CI's cmp, as a string)."""
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")).hexdigest()


def write_document(path: str, document: _t.Mapping[str, object]) -> None:
    with open(path, "w") as handle:
        handle.write(canonical_json(document))


__all__ = [
    "FleetTaskError",
    "LOAD_SUMMARY_SCHEMA",
    "LOAD_SUMMARY_SCHEMA_VERSION",
    "canonical_json",
    "document_digest",
    "load_result_summary",
    "merge_bench_outcomes",
    "merge_load_results",
    "ordered_results",
    "require_ok",
    "write_document",
]
