"""Tests for the extended collectives: scan, reduce_scatter, comm_split."""

import numpy as np
import pytest

from repro.mpi.errors import MpiError

from .conftest import build_world, run_spmd


class TestScan:
    def test_inclusive_prefix_sum(self, world4):
        bed, world = world4

        def body(proc):
            result = yield from proc.scan(proc.rank + 1, "sum")
            return result

        # values 1,2,3,4 -> prefixes 1,3,6,10
        assert run_spmd(bed, world, body) == [1, 3, 6, 10]

    def test_exclusive_scan(self, world4):
        bed, world = world4

        def body(proc):
            result = yield from proc.scan(proc.rank + 1, "sum",
                                          exclusive=True)
            return result

        assert run_spmd(bed, world, body) == [None, 1, 3, 6]

    def test_scan_non_commutative_order(self, world4):
        bed, world = world4

        def body(proc):
            result = yield from proc.scan(str(proc.rank),
                                          lambda a, b: a + b)
            return result

        assert run_spmd(bed, world, body) == ["0", "01", "012", "0123"]

    def test_scan_arrays(self, world4):
        bed, world = world4

        def body(proc):
            result = yield from proc.scan(np.full(3, proc.rank), "sum")
            return result.tolist()

        results = run_spmd(bed, world, body)
        assert results == [[0, 0, 0], [1, 1, 1], [3, 3, 3], [6, 6, 6]]

    def test_single_rank_scan(self):
        bed, world = build_world(1, 0)

        def body(proc):
            result = yield from proc.scan(42, "sum")
            return result

        assert run_spmd(bed, world, body) == [42]


class TestReduceScatter:
    def test_row_sums_distributed(self, world4):
        bed, world = world4

        def body(proc):
            # rank r contributes vector [r*10+i for i in range(4)]
            values = [proc.rank * 10 + i for i in range(4)]
            result = yield from proc.reduce_scatter(values, "sum")
            return result

        results = run_spmd(bed, world, body)
        # column i sum: sum_r (10r + i) = 60 + 4i
        assert results == [60, 64, 68, 72]

    def test_wrong_arity_rejected(self, world4):
        bed, world = world4

        def body(proc):
            yield from proc.reduce_scatter([1, 2], "sum")

        handles = world.run_spmd(body, ranks=[0])
        with pytest.raises(MpiError, match="reduce_scatter"):
            bed.nexus.run(until=handles[0])

    def test_max_op(self, world4):
        bed, world = world4

        def body(proc):
            values = [(proc.rank + dest) % 4 for dest in range(4)]
            result = yield from proc.reduce_scatter(values, "max")
            return result

        results = run_spmd(bed, world, body)
        assert results == [3, 3, 3, 3]


class TestCommSplit:
    def test_split_by_parity(self):
        bed, world = build_world(3, 3)

        def body(proc):
            comm = yield from proc.comm_split(color=proc.rank % 2,
                                              key=proc.rank)
            total = yield from proc.allreduce(proc.rank, "sum", comm=comm)
            return comm.size, total

        results = run_spmd(bed, world, body)
        assert results == [(3, 6), (3, 9), (3, 6), (3, 9), (3, 6), (3, 9)]

    def test_key_controls_rank_order(self, world4):
        bed, world = world4

        def body(proc):
            # reverse the ranks with descending keys
            comm = yield from proc.comm_split(color=0, key=-proc.rank)
            return comm.rank_of_world(proc.rank)

        results = run_spmd(bed, world, body)
        assert results == [3, 2, 1, 0]

    def test_negative_color_returns_none(self, world4):
        bed, world = world4

        def body(proc):
            color = -1 if proc.rank == 0 else 0
            comm = yield from proc.comm_split(color=color, key=0)
            if comm is None:
                return None
            return comm.size

        results = run_spmd(bed, world, body)
        assert results == [None, 3, 3, 3]

    def test_members_share_context_ids(self, world4):
        bed, world = world4
        seen = []

        def body(proc):
            comm = yield from proc.comm_split(color=0, key=0)
            seen.append(comm.p2p_context)
            # traffic on the split comm must actually match up
            n = comm.size
            my = comm.rank_of_world(proc.rank)
            data, _ = yield from proc.sendrecv(
                my, (my + 1) % n, 1, (my - 1) % n, 1, comm=comm)
            return data

        results = run_spmd(bed, world, body)
        assert len(set(seen)) == 1
        assert sorted(results) == [0, 1, 2, 3]

    def test_two_consecutive_splits_get_fresh_comms(self, world4):
        bed, world = world4

        def body(proc):
            first = yield from proc.comm_split(color=0, key=0)
            yield from proc.barrier()
            second = yield from proc.comm_split(color=0, key=0)
            return first.id != second.id

        assert all(run_spmd(bed, world, body))
