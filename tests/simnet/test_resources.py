"""Tests for Store and Resource primitives."""

import pytest

from repro.simnet import Store
from repro.simnet.errors import SimnetError
from repro.simnet.resources import Resource


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = {}

        def body():
            store.put("item")
            value = yield store.get()
            got["v"] = value

        sim.process(body())
        sim.run()
        assert got["v"] == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = {}

        def consumer():
            value = yield store.get()
            got["v"] = (value, sim.now)

        def producer():
            yield sim.timeout(2.0)
            store.put(99)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got["v"] == (99, 2.0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        out = []

        def body():
            for index in range(5):
                store.put(index)
            for _ in range(5):
                value = yield store.get()
                out.append(value)

        sim.process(body())
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_filtered_get_takes_first_match(self, sim):
        store = Store(sim)
        got = {}

        def body():
            for item in ("a1", "b1", "a2", "b2"):
                store.put(item)
            value = yield store.get(filter=lambda it: it.startswith("b"))
            got["v"] = value
            got["rest"] = store.peek_items()

        sim.process(body())
        sim.run()
        assert got["v"] == "b1"
        assert got["rest"] == ("a1", "a2", "b2")

    def test_filtered_get_does_not_block_other_getters(self, sim):
        store = Store(sim)
        got = []

        def picky():
            value = yield store.get(filter=lambda it: it == "never")
            got.append(("picky", value))

        def easy():
            value = yield store.get()
            got.append(("easy", value))

        sim.process(picky())
        sim.process(easy())
        store.put("x")
        sim.run()
        assert got == [("easy", "x")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        store.put(2)
        sim.run()
        assert store.try_get() == 1
        assert store.try_get(filter=lambda it: it == 2) == 2
        assert store.try_get() is None

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("a", sim.now))
            yield store.put("b")
            log.append(("b", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log[0] == ("a", 0.0)
        assert log[1] == ("b", 3.0)

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimnetError):
            Store(sim, capacity=0)

    def test_len_and_is_empty(self, sim):
        store = Store(sim)
        assert store.is_empty and len(store) == 0
        store.put("x")
        sim.run()
        assert not store.is_empty and len(store) == 1


class TestResource:
    def test_grant_and_release(self, sim):
        resource = Resource(sim, capacity=2)
        log = []

        def user(name, hold):
            yield resource.request()
            log.append((name, "in", sim.now))
            yield sim.timeout(hold)
            resource.release()
            log.append((name, "out", sim.now))

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.process(user("c", 1.0))
        sim.run()
        # a and b enter immediately; c waits for a release at t=1.
        assert (("a", "in", 0.0) in log and ("b", "in", 0.0) in log)
        assert ("c", "in", 1.0) in log

    def test_fifo_fairness(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def user(name):
            yield resource.request()
            order.append(name)
            yield sim.timeout(1.0)
            resource.release()

        for name in ("first", "second", "third"):
            sim.process(user(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_counters(self, sim):
        resource = Resource(sim, capacity=3)

        def body():
            yield resource.request(2)

        sim.process(body())
        sim.run()
        assert resource.in_use == 2
        assert resource.available == 1
        resource.release(2)
        assert resource.in_use == 0

    def test_over_request_rejected(self, sim):
        resource = Resource(sim, capacity=2)
        with pytest.raises(SimnetError):
            resource.request(3)
        with pytest.raises(SimnetError):
            resource.request(0)

    def test_over_release_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimnetError):
            resource.release()

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimnetError):
            Resource(sim, capacity=0)

    def test_head_of_line_blocking_is_fifo(self, sim):
        # A big request at the head must not be starved by small ones.
        resource = Resource(sim, capacity=2)
        order = []

        def holder():
            yield resource.request(2)
            yield sim.timeout(1.0)
            resource.release(2)

        def big():
            yield resource.request(2)
            order.append("big")
            resource.release(2)

        def small():
            yield resource.request(1)
            order.append("small")
            resource.release(1)

        sim.process(holder())
        sim.process(big())    # queued first
        sim.process(small())  # would fit earlier, but FIFO says no
        sim.run()
        assert order == ["big", "small"]
