#!/usr/bin/env python
"""Figure 3, executable: startpoint mobility re-selects the method.

The paper's selection example: node 0 (outside the SP2, Ethernet/TCP
only) holds a startpoint referencing an endpoint on node 2 (inside an
SP2 partition, so its descriptor table advertises both MPL and TCP).
From node 0 only TCP is applicable.  When node 0 *sends the startpoint
itself* to node 1 — a node in the same partition as node 2 — the
receiving context re-runs selection and picks MPL.

Also demonstrates manual control: reordering the descriptor table,
a required method, and dynamic `set_method`.

Run:  python examples/method_selection.py
"""

from repro import Buffer, RequireMethod, enquiry, make_sp2


def main() -> None:
    bed = make_sp2(nodes_a=2, nodes_b=1)
    with bed.nexus as nexus:
        node1 = nexus.context(bed.hosts_a[0], "node1")   # SP2 partition A
        node2 = nexus.context(bed.hosts_a[1], "node2")   # SP2 partition A
        node0 = nexus.context(bed.hosts_b[0], "node0",   # "Ethernet only"
                              methods=("local", "tcp"))

        hits = []
        node2.register_handler(
            "ping", lambda ctx, ep, buf: hits.append(buf.get_str()))

        # --- automatic selection at node 0 --------------------------------
        sp = node0.startpoint_to(node2.new_endpoint())
        print("descriptor table carried by the startpoint:",
              sp.links[0].table.methods)
        sp.ensure_connected(sp.links[0])
        print(f"at node0 (no MPL available): selected "
              f"{sp.current_methods()}")

        # --- migrate the startpoint to node 1 ------------------------------
        carried = {}
        node1.register_handler(
            "carry", lambda ctx, ep, buf: carried.update(
                sp=buf.get_startpoint(ctx)))
        carrier = node0.startpoint_to(node1.new_endpoint())

        def node0_body():
            yield from carrier.rsr("carry", Buffer().put_startpoint(sp))
            yield from sp.rsr("ping",
                              Buffer().put_str("from node0 over TCP"))

        def node1_body():
            yield from node1.wait(lambda: "sp" in carried)
            migrated = carried["sp"]
            migrated.ensure_connected(migrated.links[0])
            print(f"at node1 (same partition as node2): selected "
                  f"{migrated.current_methods()}")
            yield from migrated.rsr(
                "ping", Buffer().put_str("from node1 over MPL"))

        def node2_body():
            yield from node2.wait(lambda: len(hits) >= 2)

        nexus.run_until(node0_body(), node1_body(), node2_body())
        print("node2 received:", hits)

        # --- manual selection ------------------------------------------------
        print("\nmanual control:")
        manual = node1.startpoint_to(node2.new_endpoint())
        manual.links[0].table.promote("tcp")   # user reorders the table
        manual.ensure_connected(manual.links[0])
        print(f"  after promoting tcp in the table: "
              f"{manual.current_methods()}")
        manual.set_method("mpl")               # dynamic change, new comm
        print(f"  after set_method('mpl'):          "
              f"{manual.current_methods()}")

        required = node1.startpoint_to(node2.new_endpoint(),
                                       policy=RequireMethod("tcp"))
        required.ensure_connected(required.links[0])
        print(f"  with RequireMethod('tcp'):        "
              f"{required.current_methods()}")

        report = enquiry.report(nexus).polling[node2.id]
        print(f"\nnode2 polling: {report.cycles} cycles, "
              f"fires {report.fires}")


if __name__ == "__main__":
    main()
