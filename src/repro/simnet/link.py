"""Link cost models and point-to-point pipes.

A :class:`LinkProfile` is the parameterisation every transport cost model
is built from: fixed latency, bandwidth, per-message fixed overheads and an
optional drop probability (used by the unreliable UDP module).  The
canonical profiles calibrated to the paper's reported SP2 constants live in
:mod:`repro.transports.costmodels`.

A :class:`Pipe` is a serialised point-to-point channel: messages occupy the
pipe for their serialisation time (``bytes / bandwidth``) and arrive one
latency later, so back-to-back messages queue behind each other but latency
is pipelined — the standard store-and-forward link model.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from .errors import SimnetError
from .resources import Resource

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator


@dataclasses.dataclass(frozen=True)
class LinkProfile:
    """Cost parameters of a communication channel.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"sp2-switch-mpl"``.
    latency:
        One-way propagation + protocol latency in seconds.
    bandwidth:
        Sustained bandwidth in bytes/second.
    send_overhead:
        Fixed CPU time charged to the *sender* per message, seconds.
    recv_overhead:
        Fixed CPU time charged to the *receiver* per message, seconds.
    drop_probability:
        Probability a message is silently lost (unreliable channels only).
    """

    name: str
    latency: float
    bandwidth: float
    send_overhead: float = 0.0
    recv_overhead: float = 0.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimnetError(f"negative latency in profile {self.name!r}")
        if self.bandwidth <= 0:
            raise SimnetError(f"non-positive bandwidth in profile {self.name!r}")
        if not (0.0 <= self.drop_probability <= 1.0):
            raise SimnetError(f"bad drop probability in profile {self.name!r}")

    def serialization_time(self, nbytes: int) -> float:
        """Time the message occupies the channel: ``nbytes / bandwidth``."""
        if nbytes < 0:
            raise SimnetError(f"negative message size {nbytes!r}")
        return nbytes / self.bandwidth

    def one_way_time(self, nbytes: int) -> float:
        """Uncontended one-way transfer time (excludes CPU overheads)."""
        return self.latency + self.serialization_time(nbytes)

    def scaled(self, *, latency_factor: float = 1.0,
               bandwidth_factor: float = 1.0,
               name: str | None = None) -> "LinkProfile":
        """A derived profile with scaled latency/bandwidth (for sweeps)."""
        return dataclasses.replace(
            self,
            name=name or f"{self.name}*",
            latency=self.latency * latency_factor,
            bandwidth=self.bandwidth * bandwidth_factor,
        )


@dataclasses.dataclass
class Delivery:
    """What a :class:`Pipe` hands to the destination: payload + metadata."""

    payload: object
    nbytes: int
    sent_at: float
    arrived_at: float
    profile_name: str


class Pipe:
    """A serialised point-to-point channel between two attachment points.

    The pipe does not know about hosts or transports — it only moves
    opaque payloads with the costs of its :class:`LinkProfile` and calls
    ``deliver`` (typically ``Store.put``) on arrival.
    """

    def __init__(self, sim: "Simulator", profile: LinkProfile,
                 deliver: _t.Callable[[Delivery], object],
                 rng: np.random.Generator | None = None,
                 name: str | None = None):
        self.sim = sim
        self.profile = profile
        self.deliver = deliver
        self.rng = rng
        self.name = name or profile.name
        self._channel = Resource(sim, capacity=1, name=f"pipe:{self.name}")
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    def send(self, payload: object, nbytes: int):
        """Generator: occupy the channel, then schedule delivery.

        The caller (a simulated process) resumes once the message has been
        *serialised onto* the channel; delivery happens one latency later
        without blocking the sender — i.e. sends are asynchronous once the
        channel is free, matching how every transport in the paper behaves.
        """
        profile = self.profile
        yield self._channel.request()
        try:
            sent_at = self.sim.now
            yield self.sim.timeout(profile.serialization_time(nbytes))
        finally:
            self._channel.release()

        self.messages_sent += 1
        self.bytes_sent += nbytes

        if profile.drop_probability > 0.0:
            if self.rng is None:
                raise SimnetError(
                    f"pipe {self.name!r} has drop probability but no rng"
                )
            if self.rng.random() < profile.drop_probability:
                self.messages_dropped += 1
                return None

        delivery = Delivery(
            payload=payload,
            nbytes=nbytes,
            sent_at=sent_at,
            arrived_at=self.sim.now + profile.latency,
            profile_name=profile.name,
        )
        self.sim.process(self._deliver_later(delivery),
                         name=f"deliver:{self.name}")
        return delivery

    def _deliver_later(self, delivery: Delivery):
        yield self.sim.timeout(self.profile.latency)
        self.deliver(delivery)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Pipe {self.name!r} sent={self.messages_sent} "
                f"dropped={self.messages_dropped}>")
