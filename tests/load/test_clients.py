"""The load engine end-to-end: determinism, routing, drain, chaos."""

import pytest

from repro.load import (
    ClosedLoop,
    FixedSize,
    FleetSpec,
    LoadScenario,
    OpenLoop,
    run_scenario,
)
from repro.simnet.faults import FaultPlan


def _open_scenario(**overrides):
    spec = dict(
        name="open",
        fleets=(FleetSpec("rpc", clients=4, arrival=OpenLoop(rate=50.0),
                          sizes=FixedSize(2048), route="remote"),),
        duration=0.2,
    )
    spec.update(overrides)
    return LoadScenario(**spec)


class TestOpenLoopRuns:
    def test_open_loop_delivers_offered_load(self):
        result = run_scenario(_open_scenario())
        assert result.offered > 0
        assert result.delivered == result.offered
        assert result.messages_dropped == 0
        fleet = result.fleets["rpc"]
        assert fleet.offered_bytes == fleet.offered * 2048

    def test_byte_deterministic_across_runs(self):
        scenario = _open_scenario()
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.offered == b.offered
        assert a.delivered == b.delivered
        assert a.sim_events == b.sim_events
        assert a.latency.counts == b.latency.counts
        assert a.latency.total == b.latency.total

    def test_seed_changes_traffic(self):
        a = run_scenario(_open_scenario(seed=0))
        b = run_scenario(_open_scenario(seed=1))
        assert (a.offered, a.sim_events) != (b.offered, b.sim_events)

    def test_remote_traffic_rides_tcp(self):
        result = run_scenario(_open_scenario())
        assert "tcp" in result.latency_by_method
        assert result.latency_by_method["tcp"].count > 0

    def test_local_route_stays_on_mpl(self):
        scenario = _open_scenario(
            name="local",
            fleets=(FleetSpec("near", clients=2,
                              arrival=OpenLoop(rate=50.0),
                              sizes=FixedSize(1024), route="local"),))
        result = run_scenario(scenario)
        assert result.delivered > 0
        # Fleet traffic stays on MPL; the only TCP RSRs are the
        # controller's stop signals to the remote-partition servers.
        assert result.latency_by_method["mpl"].count >= result.delivered
        tcp = result.latency_by_method.get("tcp")
        assert tcp is None or tcp.count <= scenario.remote_servers

    def test_merged_latency_covers_all_deliveries(self):
        result = run_scenario(_open_scenario())
        per_method = sum(h.count
                         for h in result.latency_by_method.values())
        assert result.latency.count == per_method

    def test_report_carries_phase_p99(self):
        result = run_scenario(_open_scenario())
        assert any(stats.p99_us >= stats.p50_us > 0
                   for stats in result.report.phases.values())


class TestClosedLoopRuns:
    def test_closed_loop_acks_every_delivery(self):
        scenario = LoadScenario(
            name="closed",
            fleets=(FleetSpec("users", clients=3,
                              arrival=ClosedLoop(think_time=0.01),
                              sizes=FixedSize(512), route="remote"),),
            duration=0.2)
        result = run_scenario(scenario)
        fleet = result.fleets["users"]
        assert fleet.offered > 0
        assert fleet.delivered == fleet.offered
        assert fleet.acked == fleet.delivered
        assert result.last_delivery_at > 0.0

    def test_mixed_fleets_account_separately(self):
        scenario = LoadScenario(
            name="mixed",
            fleets=(
                FleetSpec("rpc", clients=2, arrival=OpenLoop(rate=40.0),
                          sizes=FixedSize(2048), route="remote"),
                FleetSpec("users", clients=2,
                          arrival=ClosedLoop(think_time=0.02),
                          sizes=FixedSize(256), route="local"),
            ),
            duration=0.2)
        result = run_scenario(scenario)
        assert result.fleets["rpc"].delivered > 0
        assert result.fleets["users"].acked > 0
        assert not result.fleets["rpc"].closed
        assert result.fleets["users"].closed
        assert result.offered == (result.fleets["rpc"].offered
                                  + result.fleets["users"].offered)


class TestTuningAndChaos:
    def test_skip_poll_changes_latency_profile(self):
        base = _open_scenario()
        tuned = _open_scenario(skip_poll=(("tcp", 10),))
        a = run_scenario(base)
        b = run_scenario(tuned)
        # Same traffic either way; the tuning only moves sim time.
        assert a.offered == b.offered
        assert a.sim_events != b.sim_events

    def test_forwarding_reroutes_remote_traffic(self):
        from repro.place import forwarding_placement

        scenario = _open_scenario(placement=forwarding_placement())
        result = run_scenario(scenario)
        assert result.delivered == result.offered
        # Client -> forwarder legs ride TCP; the relayed hop rides MPL.
        assert result.latency_by_method["mpl"].count > 0

    def test_legacy_forwarding_flag_matches_explicit_placement(self):
        from repro.place import forwarding_placement

        with pytest.warns(DeprecationWarning):
            legacy = _open_scenario(forwarding=True)
        explicit = _open_scenario(placement=forwarding_placement())
        a = run_scenario(legacy)
        b = run_scenario(explicit)
        assert a.offered == b.offered
        assert a.delivered == b.delivered
        assert a.sim_events == b.sim_events
        assert a.drained_at == b.drained_at

    def test_chaos_window_forces_retries_but_recovers(self):
        def chaos(bed):
            return FaultPlan(bed.nexus.network).flaky(
                bed.partition_a, bed.partition_b, transport="tcp",
                start=0.05, duration=0.05, drop_probability=0.3, seed=3)

        result = run_scenario(_open_scenario(chaos=chaos))
        assert result.retries > 0
        assert result.delivered > 0

    def test_drain_finishes_after_window(self):
        result = run_scenario(_open_scenario())
        assert result.drained_at >= result.scenario.duration
        assert result.elapsed >= result.scenario.duration
        assert result.delivered_rate == pytest.approx(
            result.delivered / result.elapsed)
