"""Shared fixtures for the test suite."""

import pytest

from repro.simnet import Simulator
from repro.testbeds import make_iway, make_sp2


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def sp2():
    """A 2+2 node SP2 testbed with the default transport set."""
    return make_sp2(nodes_a=2, nodes_b=2)


@pytest.fixture
def sp2_wide():
    """A 4+2 node SP2 testbed."""
    return make_sp2(nodes_a=4, nodes_b=2)


@pytest.fixture
def iway():
    """The miniature I-WAY testbed."""
    return make_iway()


def run_to_completion(nexus, *processes):
    """Run until every given process completes; returns their values."""
    done = nexus.sim.all_of(list(processes))
    nexus.run(until=done)
    return [p.value for p in processes]
