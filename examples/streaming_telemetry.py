#!/usr/bin/env python
"""Streaming telemetry: spool spans to disk, then fold them back.

The in-memory span log holds every span of a run — fine for bench
artefacts, untenable at fleet scale.  This walk-through runs the chaos
load scenario twice:

1. **in memory**, extracting the communication graph and critical
   paths the usual way; then
2. **streamed**, spooling completed spans to sharded JSONL segments
   (only open spans stay resident) and rebuilding the same documents
   with a single-pass fold over the shards.

It then proves the two are byte-identical, shows the manifest's
explicit lossiness ledger, and demonstrates seeded sampling — a
``reservoir:4`` policy that thins healthy traffic while the always-keep
classes (retries, failovers, drops) preserve every failure witness.

Run:  python examples/streaming_telemetry.py
"""

import tempfile

from repro import obs as _obs
from repro.bench.analysis import TOP_PATHS, chaos_scenario
from repro.load import run_scenario
from repro.obs.critpath import dumps_critpaths, extract_critical_paths
from repro.obs.graph import dumps_graph, extract_graph
from repro.obs.stream import (
    StreamConfig,
    fold_stream,
    iter_records,
    read_manifest,
)
from repro.obs.timeline import dumps_timeline


def main() -> None:
    scenario = chaos_scenario()
    print(f"scenario: {scenario.name}, "
          f"{scenario.duration * 1e3:.0f} ms offered window\n")

    # -- 1. the in-memory reference ---------------------------------------
    with _obs.collecting() as runs:
        mem_result = run_scenario(scenario)
    mem_obs, mem_nexus = runs[-1]
    print(f"in-memory: {len(mem_obs.spans)} spans resident "
          f"(peak {mem_obs.peak_spans})")

    # -- 2. the streamed run ----------------------------------------------
    spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
    config = StreamConfig(directory=spool_dir, max_records=500)
    with _obs.collecting() as runs:
        stream_result = run_scenario(scenario, stream=config)
    stream_obs, _nexus = runs[-1]
    summary = stream_result.stream
    assert summary is not None
    print(f"streamed:  {summary['spans_emitted']} spans spooled into "
          f"{summary['shards']} shard(s) / {summary['bytes_written']} "
          f"bytes; peak {stream_obs.peak_spans} OPEN spans resident")

    manifest = read_manifest(spool_dir)
    totals = manifest["totals"]
    print(f"ledger:    {totals['spans_opened']} opened == "
          f"{totals['spans_emitted']} emitted + "
          f"{totals['spans_sampled_out']} sampled out + "
          f"{totals['spans_dropped']} dropped\n")

    # -- 3. fold the shards; byte-identical documents ----------------------
    fold = fold_stream(spool_dir, top_k=TOP_PATHS)
    graph_mem = extract_graph(mem_obs, nexus=mem_nexus)
    paths_mem = extract_critical_paths(mem_obs, top_k=TOP_PATHS)
    assert dumps_graph(graph_mem) == dumps_graph(fold.graph)
    assert dumps_critpaths(paths_mem) == dumps_critpaths(fold.paths)
    assert mem_result.timeline is not None and fold.timeline is not None
    assert (dumps_timeline(mem_result.timeline)
            == dumps_timeline(fold.timeline))
    print("fold parity: graph, critical paths, and timeline documents "
          "are byte-identical to the in-memory extraction\n")

    # -- 4. seeded sampling keeps every failure witness --------------------
    sampled_dir = tempfile.mkdtemp(prefix="repro-spool-sampled-")
    sampled = StreamConfig(directory=sampled_dir,
                           policy="reservoir:4", seed=42)
    with _obs.collecting():
        run_scenario(scenario, stream=sampled)
    totals = read_manifest(sampled_dir)["totals"]
    kept_phases = {record["ph"] for record in iter_records(sampled_dir)
                   if record["k"] == "s"}
    print(f"sampled (reservoir:4, seed 42): {totals['spans_emitted']} "
          f"spans kept, {totals['spans_sampled_out']} sampled out")
    print(f"forced-keep classes survived: "
          f"retry={'retry' in kept_phases} "
          f"failover={'failover' in kept_phases}")
    assert "retry" in kept_phases and "failover" in kept_phases

    print(f"\nshards left for inspection under {spool_dir}")


if __name__ == "__main__":
    main()
