"""Canned simulated machine configurations used by tests, examples, and
benchmarks.

:func:`make_sp2` builds the environment every experiment in the paper ran
on: one IBM SP2 whose nodes are split into two software partitions, with
MPL available inside a partition and TCP available everywhere over the
switch (8 MB/s, ~2 ms).  :func:`make_iway` builds a small I-WAY-style
testbed: an SP2, a visualisation engine, and an instrument site joined by
ATM wide-area links — used by the metacomputing examples.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .simnet.engine import Simulator
from .simnet.link import LinkProfile
from .simnet.network import Machine, Network, Partition
from .simnet.node import Host
from .core.health import HealthConfig
from .core.retry import RetryPolicy
from .core.runtime import Nexus
from .transports.costmodels import RuntimeCosts, TransportCosts
from .util.units import mbps, milliseconds

#: TCP over the SP2 switch: the profile the paper reports.
SP2_SWITCH_TCP = LinkProfile(
    name="sp2-switch-tcp", latency=milliseconds(2.0), bandwidth=mbps(8.0),
)


@dataclasses.dataclass
class SP2Testbed:
    """A two-partition SP2 with a Nexus runtime, ready for experiments."""

    sim: Simulator
    nexus: Nexus
    machine: Machine
    partition_a: Partition
    partition_b: Partition
    hosts_a: list[Host]
    hosts_b: list[Host]

    @property
    def hosts(self) -> list[Host]:
        return self.hosts_a + self.hosts_b

    def context_grid(self, methods: _t.Sequence[str] | None = None):
        """One context per host, in (partition A, partition B) order."""
        return ([self.nexus.context(h, methods=methods) for h in self.hosts_a],
                [self.nexus.context(h, methods=methods) for h in self.hosts_b])


def make_sp2(nodes_a: int = 2, nodes_b: int = 2, *,
             transports: _t.Sequence[str] | str = ("local", "mpl", "tcp"),
             costs: _t.Mapping[str, TransportCosts] | None = None,
             runtime_costs: RuntimeCosts | None = None,
             seed: int = 0,
             switch_tcp: LinkProfile = SP2_SWITCH_TCP,
             retry_policy: "RetryPolicy | None" = None,
             health: "HealthConfig | None" = None,
             observe: bool | None = None) -> SP2Testbed:
    """Build the paper's experimental platform.

    ``nodes_a``/``nodes_b`` processors are placed in partitions "A" and
    "B" of one SP2.  MPL works within a partition (same session); TCP
    works between any two nodes over the switch at ``switch_tcp``.
    """
    sim = Simulator()
    network = Network(sim)
    machine = network.new_machine("sp2", {"tcp": switch_tcp,
                                          "udp": switch_tcp})
    hosts_a = machine.new_hosts(nodes_a)
    hosts_b = machine.new_hosts(nodes_b)
    partition_a = machine.new_partition("A", hosts_a)
    partition_b = machine.new_partition("B", hosts_b)
    nexus = Nexus(sim, network, transports=transports, costs=costs,
                  runtime_costs=runtime_costs, seed=seed,
                  retry_policy=retry_policy, health=health,
                  observe=observe)
    return SP2Testbed(sim=sim, nexus=nexus, machine=machine,
                      partition_a=partition_a, partition_b=partition_b,
                      hosts_a=hosts_a, hosts_b=hosts_b)


@dataclasses.dataclass
class IWayTestbed:
    """A miniature I-WAY: supercomputer + display + instrument over ATM."""

    sim: Simulator
    nexus: Nexus
    sp2: Machine
    cave: Machine
    instrument: Machine
    sp2_hosts: list[Host]
    cave_host: Host
    instrument_host: Host


def make_iway(sp2_nodes: int = 4, *,
              transports: _t.Sequence[str] | str = (
                  "local", "mpl", "aal5", "tcp", "udp", "mcast"),
              costs: _t.Mapping[str, TransportCosts] | None = None,
              seed: int = 0,
              wan_latency: float = milliseconds(10.0),
              wan_bandwidth: float = mbps(16.0)) -> IWayTestbed:
    """Build an I-WAY-style heterogeneous testbed.

    The SP2 and the CAVE display engine have ATM interfaces (AAL-5
    applicable between them); the instrument site is reachable only by
    routed IP (TCP/UDP) through the CAVE's site link.
    """
    sim = Simulator()
    network = Network(sim)

    sp2 = network.new_machine("sp2", {"tcp": SP2_SWITCH_TCP})
    cave = network.new_machine("cave")
    instrument = network.new_machine("instrument")

    sp2_hosts = sp2.new_hosts(sp2_nodes)
    sp2.new_partition("A", sp2_hosts)
    cave_host = cave.new_host("cave/display")
    instrument_host = instrument.new_host("instrument/daq")

    for host in sp2_hosts + [cave_host]:
        host.attributes["atm"] = True
    # Heterogeneous architectures: cross-machine traffic pays XDR costs.
    for host in sp2_hosts:
        host.attributes["arch"] = "power1"
        host.attributes["site"] = "anl"
    cave_host.attributes["arch"] = "sgi-onyx"
    cave_host.attributes["site"] = "eVL"
    instrument_host.attributes["arch"] = "sparc"
    instrument_host.attributes["site"] = "instrument-site"

    atm = LinkProfile(name="atm-oc3", latency=wan_latency,
                      bandwidth=wan_bandwidth)
    internet = LinkProfile(name="wan-ip", latency=milliseconds(25.0),
                           bandwidth=mbps(3.0))
    slow_ip = LinkProfile(name="site-ip", latency=milliseconds(25.0),
                          bandwidth=mbps(1.0))
    # The provisioned ATM circuit carries AAL-5 only; routed IP traffic
    # (TCP/UDP/multicast) takes the slower internet path — so an ATM
    # fault leaves IP connectivity intact (the failover scenario).
    network.connect(sp2, cave, atm, transports=("aal5",))
    network.connect(sp2, cave, internet, transports=("tcp", "udp", "mcast"))
    network.connect(cave, instrument, slow_ip,
                    transports=("tcp", "udp", "mcast"))

    nexus = Nexus(sim, network, transports=transports, costs=costs, seed=seed)
    return IWayTestbed(sim=sim, nexus=nexus, sp2=sp2, cave=cave,
                       instrument=instrument, sp2_hosts=sp2_hosts,
                       cave_host=cave_host, instrument_host=instrument_host)
