"""The load engine: run one :class:`LoadScenario` against a live stack.

:func:`run_scenario` builds the paper's SP2 testbed, carves it into
client hosts and server hosts, spawns one simulated process per client,
and drives RSRs at the servers according to each fleet's arrival
process.  Everything observable comes back in a :class:`LoadResult`:
offered/delivered counts per fleet, the merged end-to-end latency
histogram (from the :mod:`repro.obs` metrics the runtime records), drop
and retry counters, and the full enquiry report.

Open-loop clients issue on their arrival schedule regardless of
completions; closed-loop clients issue, wait for the server's ``ack``
RSR, think, and repeat.  After the offered-load window closes, the run
*drains*: servers keep polling until delivery counts have been stable
for ``drain_grace`` sim-seconds (capped at ``max_drain``), so a
saturated run's backlog is charged to its throughput instead of
silently vanishing.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from ..core.buffers import Buffer
from ..core.enquiry import EnquiryReport, report as enquiry_report
from ..core.errors import NexusError
from ..obs.metrics import Histogram, LATENCY_BUCKETS_US
from ..obs.stream import SpanSpool, StreamConfig
from ..obs.timeline import Timeline
from ..testbeds import make_sp2
from .arrivals import ClosedLoop, OpenLoop
from .scenario import LoadScenario, ROUTE_LOCAL

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.context import Context
    from ..core.runtime import Nexus


@dataclasses.dataclass
class FleetResult:
    """Per-fleet traffic accounting."""

    name: str
    clients: int
    route: str
    closed: bool
    offered: int = 0
    offered_bytes: int = 0
    delivered: int = 0
    acked: int = 0
    #: Sends abandoned because no healthy method remained (chaos runs).
    send_failures: int = 0

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class LoadResult:
    """Everything one scenario run produced."""

    scenario: LoadScenario
    fleets: dict[str, FleetResult]
    #: Sim time the drain controller declared the run quiet.
    drained_at: float
    #: Sim time of the last delivery (or ack) — the honest end of the
    #: run's useful work, free of the controller's detection grace.
    last_delivery_at: float
    report: EnquiryReport
    #: Merged end-to-end RSR latency histogram (µs), all methods.
    latency: Histogram
    #: Per-(method) latency histogram snapshots for reports.
    latency_by_method: dict[str, Histogram]
    retries: int
    failovers: int
    messages_dropped: int
    bytes_dropped: int
    sim_events: int
    #: Windowed telemetry recorded alongside the aggregates (interval =
    #: ``duration / scenario.timeline_windows``).
    timeline: Timeline | None = None
    #: ``(sim_time, action, detail)`` fault transitions that fired
    #: during the run (empty without chaos).
    fault_log: tuple[tuple[float, str, str], ...] = ()
    #: Spool summary when the run streamed its spans to disk (see
    #: :class:`repro.obs.stream.SpanSpool.summary`), else ``None``.
    stream: dict[str, object] | None = None

    # -- aggregates ----------------------------------------------------------

    @property
    def offered(self) -> int:
        return sum(f.offered for f in self.fleets.values())

    @property
    def delivered(self) -> int:
        return sum(f.delivered for f in self.fleets.values())

    @property
    def duration(self) -> float:
        return self.scenario.duration

    @property
    def elapsed(self) -> float:
        """Window plus whatever drain the backlog needed."""
        return max(self.scenario.duration, self.last_delivery_at)

    @property
    def offered_rate(self) -> float:
        return self.offered / self.scenario.duration

    @property
    def delivered_rate(self) -> float:
        """Delivered throughput in RSRs/sim-second.

        The denominator includes drain time, so a saturated run cannot
        report its offered rate as delivered."""
        return self.delivered / self.elapsed if self.elapsed else 0.0

    @property
    def drop_fraction(self) -> float:
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.messages_dropped / offered

    @property
    def retry_fraction(self) -> float:
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.retries / offered

    def quantile_us(self, q: float) -> float | None:
        """End-to-end latency quantile in µs over all delivered RSRs."""
        return self.latency.quantile(q)

    def portable(self) -> "LoadResult":
        """A copy safe to send across a process boundary.

        The scenario's ``chaos`` builder is the one field that may
        legitimately be a closure over live testbed state (the install
        already happened; the result only needs the fault *log*), so it
        is stripped here rather than letting one unpicklable callable
        poison a whole fleet merge.  Everything else in a LoadResult is
        plain data.
        """
        return dataclasses.replace(
            self,
            scenario=dataclasses.replace(self.scenario, chaos=None))

    def summary(self) -> str:
        p50 = self.quantile_us(0.5)
        p99 = self.quantile_us(0.99)
        fmt = lambda v: "n/a" if v is None else f"{v:.0f} us"  # noqa: E731
        return (f"{self.scenario.name}: offered {self.offered} "
                f"({self.offered_rate:.0f}/s) delivered {self.delivered} "
                f"({self.delivered_rate:.0f}/s) p50 {fmt(p50)} "
                f"p99 {fmt(p99)} drops {self.messages_dropped} "
                f"retries {self.retries}")


# ---------------------------------------------------------------------------
# engine internals
# ---------------------------------------------------------------------------

#: Attempts for control-plane RSRs (acks, stop) before declaring the
#: scenario unrunnable; each failure pauses one drain_grace so method
#: health has a chance to probe the route back up.
_CONTROL_RETRIES = 50


def _control_rsr(sim, sp, handler: str, make_buffer, pause: float):
    """Send a control-plane RSR, riding out fault windows via retry.

    Unlike fleet traffic (where a failed send is just a lost offered
    request), the run cannot finish without its acks and stop signals,
    so these retry — bounded, because a permanently partitioned control
    plane must fail loudly rather than spin sim-time forever."""
    last: NexusError | None = None
    for _attempt in range(_CONTROL_RETRIES):
        try:
            yield from sp.rsr(handler, make_buffer())
            return
        except NexusError as exc:
            last = exc
            yield sim.timeout(pause)
    raise NexusError(
        f"load: control RSR {handler!r} undeliverable after "
        f"{_CONTROL_RETRIES} attempts") from last

def _merge_latency(nexus: "Nexus") -> tuple[Histogram, dict[str, Histogram]]:
    """Merged + per-method copies of the runtime's rsr_latency_us."""
    merged = Histogram("rsr_latency_us", (), LATENCY_BUCKETS_US)
    by_method: dict[str, Histogram] = {}
    for _name, labels, metric in nexus.obs.metrics.collect("rsr_latency_us"):
        histogram = _t.cast(Histogram, metric)
        if histogram.bounds != merged.bounds:  # pragma: no cover - guard
            raise ValueError("cannot merge histograms with foreign buckets")
        for index, bucket in enumerate(histogram.counts):
            merged.counts[index] += bucket
        merged.count += histogram.count
        merged.total += histogram.total
        for attr in ("min_value", "max_value"):
            value = getattr(histogram, attr)
            if value is None:
                continue
            current = getattr(merged, attr)
            better = (min if attr == "min_value" else max)
            setattr(merged, attr,
                    value if current is None else better(current, value))
        by_method[dict(labels)["method"]] = histogram
    return merged, by_method


def run_scenario(scenario: LoadScenario, *,
                 stream: StreamConfig | None = None) -> LoadResult:
    """Execute one scenario; deterministic for a given scenario value.

    With ``stream``, completed spans spool to sharded JSONL in
    ``stream.directory`` instead of accumulating in memory (see
    :mod:`repro.obs.stream`); the spool is finalized — manifest written,
    open spans flushed — before this returns.
    """
    bed = make_sp2(
        nodes_a=scenario.client_hosts + scenario.local_servers,
        nodes_b=scenario.remote_servers,
        transports=scenario.transports,
        seed=scenario.seed,
        observe=True,
    )
    nexus = bed.nexus
    sim = bed.sim
    spool = SpanSpool(stream).attach(nexus.obs) if stream is not None \
        else None
    timeline = nexus.obs.enable_timeline(
        scenario.duration / scenario.timeline_windows)

    client_hosts = bed.hosts_a[:scenario.client_hosts]
    local_hosts = bed.hosts_a[scenario.client_hosts:]
    remote_hosts = bed.hosts_b[:scenario.remote_servers]

    servers_local = [nexus.context(host, f"srv/local/{index}")
                     for index, host in enumerate(local_hosts)]
    servers_remote = [nexus.context(host, f"srv/remote/{index}")
                      for index, host in enumerate(remote_hosts)]
    servers = servers_local + servers_remote

    placement = scenario.placement
    if placement is not None and placement.forwarder is not None:
        from ..core.forwarding import ForwardingService

        # The paper's configuration: the forwarding processor is one of
        # the partition's own ranks (§4.3), not a free extra node — it
        # keeps serving requests, keeps paying the slow method's poll
        # tax, and additionally relays every other member's external
        # traffic.  Which rank, and over which methods, is the
        # placement's decision (legacy forwarding=True maps to rank 0,
        # tcp -> mpl).
        forwarder = servers_remote[placement.forwarder]
        service = ForwardingService(nexus, method=placement.method,
                                    fast_method=placement.fast_method)
        service.install(forwarder, servers_remote)

    # Fleet accounting + per-server work queues.  Handlers only enqueue;
    # the server's process performs the (possibly costly) service and
    # the ack send, so one rank's serving capacity is honestly serial.
    fleets = {
        fleet.name: FleetResult(name=fleet.name, clients=fleet.clients,
                                route=fleet.route,
                                closed=isinstance(fleet.arrival, ClosedLoop))
        for fleet in scenario.fleets
    }
    work_queues: dict[int, collections.deque] = {
        ctx.id: collections.deque() for ctx in servers}
    reply_sps: dict[int, dict[int, object]] = {
        ctx.id: {} for ctx in servers}
    #: Per-server stop flags, flipped by a "load/stop" RSR from the
    #: controller context.  Delivering stop as a message (rather than a
    #: bare flag flip) matters: a waiting server only wakes on message
    #: arrival, so an out-of-band flag would deadlock an idle run.
    stop_flags: dict[int, bool] = {ctx.id: False for ctx in servers}
    drained_at = [0.0]
    last_delivery = [0.0]

    for fleet in scenario.fleets:
        stats = fleets[fleet.name]
        handler_name = f"load/{fleet.name}"
        if isinstance(fleet.arrival, ClosedLoop):
            def handler(ctx, _endpoint, buffer, _fleet=fleet, _stats=stats):
                work_queues[ctx.id].append(
                    (_fleet, _stats, buffer.get_int()))
        else:
            def handler(ctx, _endpoint, _buffer, _fleet=fleet, _stats=stats):
                work_queues[ctx.id].append((_fleet, _stats, None))
        for server in servers:
            server.register_handler(handler_name, handler)

    def on_stop(ctx, _endpoint, _buffer):
        stop_flags[ctx.id] = True

    for server in servers:
        server.register_handler("load/stop", on_stop)

    # The controller owns a context of its own so the stop signal rides
    # the same RSR machinery as the traffic it terminates.
    controller_ctx = nexus.context(client_hosts[0], "load/controller")
    stop_sps = [controller_ctx.startpoint_to(server.new_endpoint())
                for server in servers]

    # Client fleets: one context + process per client, round-robin over
    # the client hosts.  Built after any forwarding install so exported
    # descriptor tables already carry the rerouted entries.
    client_bodies: list[_t.Generator] = []
    client_names: list[str] = []
    slot_counter = 0
    for fleet in scenario.fleets:
        targets = (servers_local if fleet.route == ROUTE_LOCAL
                   else servers_remote)
        stats = fleets[fleet.name]
        for index in range(fleet.clients):
            slot = slot_counter
            slot_counter += 1
            host = client_hosts[slot % len(client_hosts)]
            cctx = nexus.context(host, f"load/{fleet.name}/{index}")
            target = targets[index % len(targets)]
            sp = cctx.startpoint_to(target.new_endpoint())
            rng = nexus.streams.stream(f"load/{fleet.name}/{index}")
            handler_name = f"load/{fleet.name}"

            if isinstance(fleet.arrival, OpenLoop):
                def body(_fleet=fleet, _stats=stats, _sp=sp, _rng=rng,
                         _handler=handler_name):
                    for when in _fleet.arrival.times(
                            _rng, 0.0, scenario.duration):
                        now = sim.now
                        if when > now:
                            yield sim.timeout(when - now)
                        size = _fleet.sizes.sample(_rng)
                        _stats.offered += 1
                        _stats.offered_bytes += size
                        try:
                            yield from _sp.rsr(_handler,
                                               Buffer().put_padding(size))
                        except NexusError:
                            # All methods down (chaos): the request is
                            # lost but the fleet keeps offering.
                            _stats.send_failures += 1
            else:
                acked = [0]

                def on_ack(_ctx, _endpoint, _buffer, _acked=acked,
                           _stats=stats):
                    _acked[0] += 1
                    _stats.acked += 1
                    last_delivery[0] = sim.now

                cctx.register_handler("load/ack", on_ack)
                reply_sps[target.id][slot] = target.startpoint_to(
                    cctx.new_endpoint())

                def body(_fleet=fleet, _stats=stats, _sp=sp, _rng=rng,
                         _cctx=cctx, _acked=acked, _handler=handler_name,
                         _slot=slot):
                    arrival = _t.cast(ClosedLoop, _fleet.arrival)
                    target_count = 0
                    while sim.now < scenario.duration:
                        size = _fleet.sizes.sample(_rng)
                        _stats.offered += 1
                        _stats.offered_bytes += size
                        target_count += 1
                        try:
                            yield from _sp.rsr(
                                _handler,
                                Buffer().put_int(_slot).put_padding(size))
                        except NexusError:
                            _stats.send_failures += 1
                            target_count -= 1  # no ack will ever come
                        else:
                            yield from _cctx.wait(
                                lambda: _acked[0] >= target_count)
                        think = arrival.think(_rng)
                        if sim.now + think >= scenario.duration:
                            break
                        if think > 0:
                            yield sim.timeout(think)

            client_bodies.append(body())
            client_names.append(f"client:{fleet.name}:{index}")

    # Server bodies: poll (dispatching as messages land) until the drain
    # controller's stop RSR arrives.  Each dequeued request pays its
    # fleet's service work through busy_work — so every Nexus op of
    # service runs the skip-decimated polling function, which is exactly
    # how untuned TCP polling taxes serving capacity (Table 1's
    # mechanism, applied to a request-serving rank).  Closed-loop
    # requests are acked once served.
    def server_body(ctx: "Context"):
        work = work_queues[ctx.id]
        replies = reply_sps[ctx.id]
        while True:
            yield from ctx.wait(lambda: work or stop_flags[ctx.id])
            while work:
                fleet, stats, client_slot = work.popleft()
                if fleet.service_ops or fleet.service_time:
                    yield from ctx.poll_manager.busy_work(
                        fleet.service_ops, fleet.service_time)
                stats.delivered += 1
                last_delivery[0] = sim.now
                if client_slot is not None:
                    yield from _control_rsr(
                        sim, _t.cast(_t.Any, replies[client_slot]),
                        "load/ack", Buffer, scenario.drain_grace)
            if stop_flags[ctx.id] and not work:
                return

    fault_plan = None
    if scenario.chaos is not None:
        fault_plan = scenario.chaos(bed)
        fault_plan.install(sim)

    client_procs = [nexus.spawn(body, name=name)
                    for body, name in zip(client_bodies, client_names)]
    server_procs = [nexus.spawn(server_body(ctx), name=f"server:{ctx.name}")
                    for ctx in servers]

    def controller():
        yield sim.all_of(client_procs)
        deadline = sim.now + scenario.max_drain
        seen = -1
        while sim.now < deadline:
            current = (sum(f.delivered for f in fleets.values())
                       + sum(f.acked for f in fleets.values()))
            if current == seen:
                break
            seen = current
            grace = min(scenario.drain_grace, deadline - sim.now)
            yield sim.timeout(grace)
        drained_at[0] = sim.now
        for sp in stop_sps:
            yield from _control_rsr(sim, sp, "load/stop", Buffer,
                                    scenario.drain_grace)

    controller_proc = nexus.spawn(controller(), name="load:controller")

    # skip_poll tuning applies to every context in the run.
    skips = scenario.skip_map()
    if skips:
        for ctx in nexus.contexts.values():
            for method, value in skips.items():
                if method in ctx.poll_manager.methods:
                    ctx.poll_manager.set_skip(method, value)

    nexus.run_until(controller_proc, *server_procs)

    if spool is not None:
        spool.finalize(
            contexts={ctx.id: (ctx.name, ctx.host.name)
                      for ctx in nexus.contexts.values()},
            meta={"scenario": scenario.name, "seed": scenario.seed})
    merged, by_method = _merge_latency(nexus)
    snapshot = enquiry_report(nexus)
    return LoadResult(
        scenario=scenario,
        fleets=fleets,
        drained_at=drained_at[0],
        last_delivery_at=last_delivery[0],
        report=snapshot,
        latency=merged,
        latency_by_method=by_method,
        retries=snapshot.health.retries,
        failovers=snapshot.health.failovers,
        messages_dropped=sum(stats.messages_dropped
                             for stats in snapshot.transports.values()),
        bytes_dropped=sum(stats.bytes_dropped
                          for stats in snapshot.transports.values()),
        sim_events=sim.events_processed,
        timeline=timeline,
        fault_log=tuple(fault_plan.log) if fault_plan is not None else (),
        stream=spool.summary() if spool is not None else None,
    )


__all__ = ["FleetResult", "LoadResult", "run_scenario"]
