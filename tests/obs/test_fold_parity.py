"""Streamed-fold parity: folded documents must equal in-memory ones.

The streaming path is only trustworthy if it is invisible in the
output: for every scenario, folding the spooled shards must rebuild the
timeline / graph / dot / critical-path documents **byte-identically**
to extracting them from the in-memory span log.  This is the contract
the CI stream-smoke job enforces with ``cmp``; these tests enforce it
per scenario, closer to the code.
"""

import dataclasses

import pytest

from repro import obs as _obs
from repro.bench.analysis import (
    TOP_PATHS,
    chaos_scenario,
    forwarding_scenario,
)
from repro.load import run_scenario
from repro.obs.critpath import dumps_critpaths, extract_critical_paths
from repro.obs.graph import dot_graph, dumps_graph, extract_graph
from repro.obs.stream import StreamConfig, fold_stream
from repro.obs.timeline import dumps_timeline

SCENARIOS = {
    "chaos": chaos_scenario,
    "forward": forwarding_scenario,
    # Multicast fan-out exercises fork/retire chains in the spool.
    "forward-short": lambda: dataclasses.replace(
        forwarding_scenario(), duration=0.05),
}


def run_pair(tmp_path, scenario):
    """The same scenario twice: in-memory reference, then streamed."""
    with _obs.collecting() as runs:
        mem_result = run_scenario(scenario)
    mem_obs, mem_nexus = runs[-1]
    config = StreamConfig(directory=str(tmp_path / "spool"),
                          max_records=400)
    with _obs.collecting():
        stream_result = run_scenario(scenario, stream=config)
    fold = fold_stream(config.directory, top_k=TOP_PATHS)
    return mem_result, mem_obs, mem_nexus, stream_result, fold


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_folded_documents_byte_identical(tmp_path, name):
    scenario = SCENARIOS[name]()
    mem_result, mem_obs, mem_nexus, stream_result, fold = run_pair(
        tmp_path, scenario)

    graph_mem = extract_graph(mem_obs, nexus=mem_nexus)
    assert dumps_graph(graph_mem) == dumps_graph(fold.graph)
    assert (dot_graph(graph_mem, title=scenario.name)
            == dot_graph(fold.graph, title=scenario.name))

    paths_mem = extract_critical_paths(mem_obs, top_k=TOP_PATHS)
    assert dumps_critpaths(paths_mem) == dumps_critpaths(fold.paths)

    assert mem_result.timeline is not None and fold.timeline is not None
    assert (dumps_timeline(mem_result.timeline)
            == dumps_timeline(fold.timeline))

    assert not fold.unresolved_rsrs, (
        f"every RSR should resolve at end of run: {fold.unresolved_rsrs}")
    # And the streamed run's own live surfaces agree with the reference.
    assert stream_result.delivered == mem_result.delivered
    assert stream_result.timeline is not None
    assert (dumps_timeline(stream_result.timeline)
            == dumps_timeline(mem_result.timeline))


def test_sampled_fold_refuses_timeline(tmp_path):
    # A sampled spool cannot replay the counters faithfully, so the
    # fold must return no timeline rather than a silently-wrong one.
    config = StreamConfig(directory=str(tmp_path / "spool"),
                          policy="head:3", seed=0)
    with _obs.collecting():
        run_scenario(forwarding_scenario(), stream=config)
    fold = fold_stream(config.directory)
    assert fold.timeline is None
    assert fold.graph is not None, (
        "the partial graph is still useful (and labelled by policy)")


def test_capacity_dropped_trace_refuses_extraction():
    # In-memory traces that overflowed the span cap have broken chains:
    # extraction must refuse by default and annotate when allowed.
    from repro.obs.graph import graph_document
    from repro.obs.spans import TraceIncompleteError

    with _obs.collecting() as runs:
        run_scenario(dataclasses.replace(
            forwarding_scenario(), duration=0.05))
    obs, nexus = runs[-1]
    # Simulate a span log that hit its capacity cap mid-run: whatever
    # the count, extraction must treat the chains as untrustworthy.
    obs.dropped_spans = 17
    with pytest.raises(TraceIncompleteError):
        extract_graph(obs, nexus=nexus)
    with pytest.raises(TraceIncompleteError):
        extract_critical_paths(obs)
    graph = extract_graph(obs, nexus=nexus, allow_partial=True)
    document = graph_document(graph)
    assert document["dropped_spans"] == obs.dropped_spans
