"""The bench load artefact: recording, validation, CLI wiring."""

import json

import pytest

from repro.bench.load import (
    CAPACITY_SLO,
    capacity_variants,
    scenarios,
    slos,
)
from repro.bench.record import BenchRecord, record_load
from repro.load import SLO, evaluate, find_capacity, run_scenario
from repro.obs.validate import validate_file, validate_load_record


class _MiniBench:
    """A LoadBench-shaped object from one tiny real run."""

    def __init__(self):
        scenario = scenarios(quick=True)["steady"]
        result = run_scenario(scenario)
        verdict = evaluate(result, slos()["steady"])
        capacity = find_capacity(
            capacity_variants(quick=True)["untuned"], CAPACITY_SLO,
            low=100.0, high=400.0, tolerance=0.3, max_probes=3)
        self.results = {"steady": result}
        self.verdicts = {"steady": verdict}
        self.capacities = {"untuned": capacity}
        self.quick = True


@pytest.fixture(scope="module")
def bench():
    return _MiniBench()


class TestSuiteDefinitions:
    def test_every_scenario_has_an_slo(self):
        assert set(scenarios(quick=True)) == set(slos())

    def test_quick_mode_shrinks_duration_only(self):
        quick = scenarios(quick=True)["steady"]
        full = scenarios(quick=False)["steady"]
        assert quick.duration < full.duration
        assert quick.fleets == full.fleets

    def test_capacity_variants_differ_only_in_tuning(self):
        variants = capacity_variants(quick=True)
        assert set(variants) == {"untuned", "tuned-skip-poll",
                                 "forwarding"}
        assert variants["untuned"].skip_poll == ()
        assert variants["tuned-skip-poll"].skip_poll != ()
        assert variants["forwarding"].forwarding
        rates = {v.open_rate for v in variants.values()}
        assert len(rates) == 1


class TestRecordLoad:
    def test_record_round_trips_through_validator(self, bench, tmp_path):
        record = BenchRecord("load-test", quick=True)
        record_load(record, bench)
        path = tmp_path / "BENCH_load.json"
        record.write(str(path))
        kind, summary = validate_file(str(path))
        assert kind == "record"
        assert summary["load_scenarios"] == 1
        assert summary["capacity_searches"] == 1

    def test_record_is_byte_deterministic(self, bench, tmp_path):
        paths = []
        for index in range(2):
            record = BenchRecord("load-test", quick=True)
            record_load(record, bench)
            path = tmp_path / f"r{index}.json"
            record.write(str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_validator_rejects_incomplete_scenario(self, bench, tmp_path):
        record = BenchRecord("load-test", quick=True)
        record_load(record, bench)
        path = tmp_path / "bad.json"
        record.write(str(path))
        document = json.loads(path.read_text())
        del document["artefacts"]["load"]["metrics"]["steady.p99_us"]
        with pytest.raises(ValueError, match="lacks p99_us"):
            validate_load_record(document)

    def test_validator_rejects_delivered_over_offered(self, bench,
                                                      tmp_path):
        record = BenchRecord("load-test", quick=True)
        record_load(record, bench)
        path = tmp_path / "bad.json"
        record.write(str(path))
        document = json.loads(path.read_text())
        metrics = document["artefacts"]["load"]["metrics"]
        metrics["steady.delivered"]["value"] = (
            metrics["steady.offered"]["value"] + 1)
        with pytest.raises(ValueError, match="delivered"):
            validate_load_record(document)

    def test_record_without_load_artefact_passes_trivially(self):
        summary = validate_load_record({"artefacts": {}})
        assert summary == {"load_scenarios": 0, "capacity_searches": 0}


class TestCLI:
    def test_bench_cli_runs_load_quick(self, capsys, tmp_path):
        from repro.bench.__main__ import main as bench_main

        path = tmp_path / "out.json"
        assert bench_main(["load", "--quick", "--record",
                           str(path)]) == 0
        out = capsys.readouterr().out
        assert "Load scenarios under SLO" in out
        assert "capacity" in out.lower()
        kind, summary = validate_file(str(path))
        assert kind == "record"
        assert summary["load_scenarios"] == 3
        assert summary["capacity_searches"] == 3
