"""Validate repro JSON artefacts (``python -m repro.obs.validate``).

Sniffs the document type and applies the matching contract:

**Chrome trace-event exports** — the subset of the trace-event format
Perfetto relies on, plus this repo's own guarantees:

* top-level object with a ``traceEvents`` list;
* every event has ``ph``/``name``/``pid``/``tid``; complete ("X")
  events also carry numeric ``ts`` and ``dur``;
* span events carry causal ``args.rsr`` ids, and at least one traced
  RSR exhibits the four headline phases (marshal, wire, poll_detect,
  dispatch);
* the embedded ``metrics`` section contains per-method RSR latency
  histograms whose bucket counts sum to their sample counts;
* as the one exception, an export that *declares itself empty*
  (``otherData.spans == 0``, e.g. ``--trace`` over a run that built no
  Nexus) is valid with no events and no histograms.

**Bench records** (``schema == "repro.bench.record"``, written by
``python -m repro.bench --record``) — the full structural contract from
:func:`repro.bench.record.validate_record_document`, plus load-tier
checks when the record carries a ``load`` artefact: every scenario must
publish its SLO verdict (``<scenario>.slo_passed``) alongside the
counters the verdict was judged from (offered/delivered, p50/p99), the
delivered count may not exceed the offered count, and every capacity
search must publish both its rate and its probe count.

**Analysis exports** — the windowed-telemetry, communication-graph,
and critical-path documents written by ``python -m repro.bench analysis
--export-dir`` (schemas ``repro.obs.timeline`` / ``repro.obs.graph`` /
``repro.obs.critpath``): schema version, structural shape, and the
internal invariants that make them trustworthy — histogram bucket
counts sum to their sample counts, graph edges reference exported
nodes and per-node totals match the edge list, and every critical
path's step shares sum to its end-to-end latency.

**Placement plans** (``schema == "repro.place.plan"``, written by
``python -m repro.bench place --export-dir``): schema version, a
duplicate-free ``[rank, label]`` assignment list, a null-or-index
forwarder, and non-empty method names.

**Stream spools** — the sharded JSONL segments and ``manifest.json``
written by the streaming telemetry spool (:mod:`repro.obs.stream`):
the manifest's lossiness ledger must balance (``spans_opened ==
spans_emitted + spans_sampled_out + spans_dropped``), per-shard record
and span counts must sum to the totals, and — when the manifest sits
next to its shards — every shard file is cross-checked for existence,
byte length, sha256, and record count.  A shard file itself validates
line by line against the four record kinds.

**Merged fleet manifests** (``repro.obs.stream.manifest.merged``,
written by ``python -m repro.fleet --stream-dir``): every per-task
section must satisfy the single-spool invariants, the roll-up totals
must equal the sum of the task sections, and each task's spool is
cross-checked on disk when the merged manifest sits in its merge root.

Used by the CI smoke jobs and the test suite; exits non-zero with a
reason on the first violation.
"""

from __future__ import annotations

import json
import sys
import typing as _t

REQUIRED_PHASES = ("marshal", "wire", "poll_detect", "dispatch")


class TraceValidationError(ValueError):
    """The document violates the trace-event contract."""


def _fail(reason: str) -> "_t.NoReturn":
    raise TraceValidationError(reason)


def validate_trace_document(document: object) -> dict[str, object]:
    """Validate one exported document; returns summary statistics."""
    if not isinstance(document, dict):
        _fail(f"top level must be an object, got {type(document).__name__}")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        _fail("traceEvents must be a list")
    if not events:
        # Valid only for an empty-by-construction export (zero collected
        # runs / zero spans): the document must say so itself.
        other = document.get("otherData")
        if not isinstance(other, dict) or other.get("spans") != 0:
            _fail("traceEvents empty but otherData does not declare "
                  "zero spans")
        if not isinstance(document.get("metrics"), dict):
            _fail("metrics section missing")
        return {"events": 0, "span_events": 0, "rsrs": 0,
                "full_lifecycles": 0, "latency_histograms": 0}

    phases_by_rsr: dict[tuple[object, object], set[str]] = {}
    span_events = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(f"traceEvents[{index}] is not an object")
        for field in ("ph", "name", "pid", "tid"):
            if field not in event:
                _fail(f"traceEvents[{index}] missing {field!r}")
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            _fail(f"traceEvents[{index}] has unexpected ph={event['ph']!r}")
        for field in ("ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                _fail(f"traceEvents[{index}].{field} must be numeric")
        if _t.cast(float, event["dur"]) < 0:
            _fail(f"traceEvents[{index}] has negative duration")
        args = event.get("args")
        if not isinstance(args, dict) or "rsr" not in args:
            _fail(f"traceEvents[{index}] span lacks args.rsr causal id")
        span_events += 1
        # RSR ids are unique within a pid block (one block per run).
        run_block = _t.cast(int, event["pid"]) // 1000
        phases_by_rsr.setdefault((run_block, args["rsr"]), set()).add(
            _t.cast(str, event["name"]))

    if span_events == 0:
        _fail("no span ('X') events present")
    full_lifecycles = sum(
        1 for phases in phases_by_rsr.values()
        if all(phase in phases for phase in REQUIRED_PHASES))
    if full_lifecycles == 0:
        _fail(f"no RSR carries all required phases {REQUIRED_PHASES}")

    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        _fail("metrics section missing")
    flat: list[_t.Mapping[str, object]] = []
    stack: list[object] = [metrics]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            if "rsr_latency_us" in node:
                flat.extend(_t.cast(list, node["rsr_latency_us"]))
            else:
                stack.extend(node.values())
    if not flat:
        _fail("metrics contain no rsr_latency_us histograms")
    for snapshot in flat:
        counts = _t.cast(list, snapshot["counts"])
        if sum(counts) != snapshot["count"]:
            _fail("latency histogram bucket counts do not sum to count")
        if "method" not in _t.cast(dict, snapshot["labels"]):
            _fail("latency histogram lacks a method label")

    return {
        "events": len(events),
        "span_events": span_events,
        "rsrs": len(phases_by_rsr),
        "full_lifecycles": full_lifecycles,
        "latency_histograms": len(flat),
    }


def validate_trace_file(path: str) -> dict[str, object]:
    with open(path) as handle:
        document = json.load(handle)
    return validate_trace_document(document)


#: Counters every load scenario must publish next to its SLO verdict.
LOAD_SCENARIO_METRICS = ("offered", "delivered", "delivered_rate",
                         "p50_us", "p99_us")


def validate_load_record(document: _t.Mapping[str, object]
                         ) -> dict[str, object]:
    """Load-tier checks over an already structurally-valid bench record.

    A record without a ``load`` artefact passes trivially (zero
    scenarios); one *with* it must carry complete SLO-judged scenarios
    and complete capacity searches.
    """
    artefacts = _t.cast(dict, document.get("artefacts", {}))
    load = artefacts.get("load")
    if load is None:
        return {"load_scenarios": 0, "capacity_searches": 0}
    metrics = _t.cast(dict, _t.cast(dict, load)["metrics"])

    scenarios = sorted(name[: -len(".slo_passed")] for name in metrics
                       if name.endswith(".slo_passed"))
    if not scenarios:
        _fail("load artefact present but no <scenario>.slo_passed metrics")
    for scenario in scenarios:
        for suffix in LOAD_SCENARIO_METRICS:
            if f"{scenario}.{suffix}" not in metrics:
                _fail(f"load scenario {scenario!r} lacks {suffix}")
        offered = _t.cast(dict, metrics[f"{scenario}.offered"])["value"]
        delivered = _t.cast(dict, metrics[f"{scenario}.delivered"])["value"]
        if delivered > offered:
            _fail(f"load scenario {scenario!r} delivered {delivered} "
                  f"> offered {offered}")

    searches = sorted({name.split(".")[1] for name in metrics
                       if name.startswith("capacity.")})
    for search in searches:
        for suffix in ("rate", "probes"):
            if f"capacity.{search}.{suffix}" not in metrics:
                _fail(f"capacity search {search!r} lacks {suffix}")

    return {"load_scenarios": len(scenarios),
            "capacity_searches": len(searches)}


def _check_version(document: _t.Mapping[str, object], expected: int,
                   kind: str) -> None:
    if document.get("schema_version") != expected:
        _fail(f"{kind}: unsupported schema_version "
              f"{document.get('schema_version')!r}")


def validate_timeline_document(document: _t.Mapping[str, object]
                               ) -> dict[str, object]:
    """Structural + invariant checks over a timeline export."""
    from .timeline import TIMELINE_SCHEMA_VERSION

    _check_version(document, TIMELINE_SCHEMA_VERSION, "timeline")
    interval = document.get("interval_s")
    if not isinstance(interval, (int, float)) or interval <= 0:
        _fail(f"timeline: interval_s must be positive, got {interval!r}")
    bounds = document.get("bounds")
    if not isinstance(bounds, list) or bounds != sorted(bounds):
        _fail("timeline: bounds must be a sorted list")
    counters = document.get("counters")
    histograms = document.get("histograms")
    if not isinstance(counters, dict) or not isinstance(histograms, dict):
        _fail("timeline: counters/histograms sections missing")
    windows = document.get("windows")
    if windows is not None and not (
            isinstance(windows, dict)
            and isinstance(windows.get("lo"), int)
            and isinstance(windows.get("hi"), int)):
        _fail("timeline: windows must be null or {lo, hi}")
    samples = 0
    for name, series in histograms.items():
        for key, per_window in _t.cast(dict, series).items():
            for window, snapshot in _t.cast(dict, per_window).items():
                where = f"timeline histogram {name}/{key}@{window}"
                counts = _t.cast(dict, snapshot).get("counts")
                count = _t.cast(dict, snapshot).get("count")
                if not isinstance(counts, list) or sum(counts) != count:
                    _fail(f"{where}: bucket counts do not sum to count")
                if len(counts) != len(bounds) + 1:
                    _fail(f"{where}: expected {len(bounds) + 1} buckets, "
                          f"got {len(counts)}")
                samples += _t.cast(int, count)
    return {"counter_series": sum(len(_t.cast(dict, s))
                                  for s in counters.values()),
            "histogram_series": sum(len(_t.cast(dict, s))
                                    for s in histograms.values()),
            "histogram_samples": samples}


def validate_graph_document(document: _t.Mapping[str, object]
                            ) -> dict[str, object]:
    """Structural + invariant checks over a communication-graph export."""
    from .graph import GRAPH_SCHEMA_VERSION

    _check_version(document, GRAPH_SCHEMA_VERSION, "graph")
    nodes = document.get("nodes")
    edges = document.get("edges")
    if not isinstance(nodes, list) or not isinstance(edges, list):
        _fail("graph: nodes/edges sections missing")
    ranks = set()
    for node in nodes:
        if not isinstance(node, dict) or not isinstance(
                node.get("rank"), int):
            _fail("graph: node lacks an integer rank")
        ranks.add(node["rank"])
    messages = bytes_total = 0
    for index, edge in enumerate(edges):
        if not isinstance(edge, dict):
            _fail(f"graph: edges[{index}] is not an object")
        for field in ("src", "dst", "method", "messages", "bytes"):
            if field not in edge:
                _fail(f"graph: edges[{index}] missing {field!r}")
        if edge["src"] not in ranks or edge["dst"] not in ranks:
            _fail(f"graph: edges[{index}] references an unknown rank")
        messages += _t.cast(int, edge["messages"])
        bytes_total += _t.cast(int, edge["bytes"])
    if messages != document.get("total_messages"):
        _fail("graph: edge messages do not sum to total_messages")
    if bytes_total != document.get("total_bytes"):
        _fail("graph: edge bytes do not sum to total_bytes")
    # Per-node in/out totals must agree with the edge list.
    inbound: dict[int, int] = {rank: 0 for rank in ranks}
    outbound: dict[int, int] = {rank: 0 for rank in ranks}
    for edge in edges:
        outbound[_t.cast(int, edge["src"])] += _t.cast(int,
                                                       edge["messages"])
        inbound[_t.cast(int, edge["dst"])] += _t.cast(int,
                                                      edge["messages"])
    for node in nodes:
        rank = _t.cast(int, node["rank"])
        if node.get("messages_in") != inbound[rank] \
                or node.get("messages_out") != outbound[rank]:
            _fail(f"graph: node {rank} in/out totals disagree with edges")
    return {"nodes": len(nodes), "edges": len(edges),
            "messages": messages, "bytes": bytes_total}


def validate_critpath_document(document: _t.Mapping[str, object]
                               ) -> dict[str, object]:
    """Structural + invariant checks over a critical-path export."""
    from .critpath import CRITPATH_SCHEMA_VERSION

    _check_version(document, CRITPATH_SCHEMA_VERSION, "critpath")
    paths = document.get("paths")
    if not isinstance(paths, list):
        _fail("critpath: paths section missing")
    for index, path in enumerate(paths):
        if not isinstance(path, dict):
            _fail(f"critpath: paths[{index}] is not an object")
        steps = path.get("steps")
        latency = path.get("latency_s")
        if not isinstance(steps, list) or not steps:
            _fail(f"critpath: paths[{index}] has no steps")
        if not isinstance(latency, (int, float)) or latency < 0:
            _fail(f"critpath: paths[{index}] latency_s invalid")
        shares = sum(_t.cast(float, _t.cast(dict, step)["share_s"])
                     for step in steps)
        if abs(shares - _t.cast(float, latency)) > 1e-9:
            _fail(f"critpath: paths[{index}] step shares sum to "
                  f"{shares!r}, latency is {latency!r}")
    if not isinstance(document.get("phase_attribution_s"), dict):
        _fail("critpath: phase_attribution_s section missing")
    return {"paths": len(paths),
            "steps": sum(len(_t.cast(dict, p)["steps"]) for p in paths)}


def validate_placement_document(document: _t.Mapping[str, object]
                                ) -> dict[str, object]:
    """Structural checks over a placement-plan export
    (``repro.place.plan``, written by ``python -m repro.bench place
    --export-dir``)."""
    from ..place.plan import PLAN_SCHEMA_VERSION

    _check_version(document, PLAN_SCHEMA_VERSION, "placement")
    assignment = document.get("assignment")
    if not isinstance(assignment, list):
        _fail("placement: assignment must be a list")
    ranks = set()
    for index, pair in enumerate(assignment):
        if not (isinstance(pair, list) and len(pair) == 2
                and isinstance(pair[0], int) and isinstance(pair[1], str)):
            _fail(f"placement: assignment[{index}] must be "
                  "[rank, label]")
        if pair[0] in ranks:
            _fail(f"placement: assignment repeats rank {pair[0]}")
        ranks.add(pair[0])
    forwarder = document.get("forwarder")
    if forwarder is not None and not (
            isinstance(forwarder, int) and forwarder >= 0):
        _fail(f"placement: forwarder must be null or a non-negative "
              f"integer, got {forwarder!r}")
    for field in ("method", "fast_method"):
        value = document.get(field)
        if not isinstance(value, str) or not value:
            _fail(f"placement: {field} must be a non-empty string")
    if not isinstance(document.get("meta"), dict):
        _fail("placement: meta section missing")
    return {"ranks": len(ranks), "forwarder": forwarder,
            "method": document["method"],
            "fast_method": document["fast_method"]}


#: Streamed-telemetry record kinds to their required fields (see
#: :mod:`repro.obs.stream` for the record format).
SHARD_RECORD_FIELDS: dict[str, tuple[str, ...]] = {
    "s": ("id", "rsr", "ph", "ctx", "lane", "t0", "par", "attrs"),
    "d": ("rsr", "t", "lane", "us", "ctx"),
    "x": ("rsr", "t", "lane"),
    "r": ("rsr",),
}


def validate_manifest_document(document: _t.Mapping[str, object], *,
                               directory: str | None = None
                               ) -> dict[str, object]:
    """Structural + invariant checks over a stream-spool manifest.

    With ``directory`` (inferred from the manifest's path by
    :func:`validate_file`) every listed shard is cross-checked against
    the file on disk: existence, byte length, sha256, and record count.
    """
    import hashlib
    import os

    from .stream import MANIFEST_SCHEMA_VERSION

    _check_version(document, MANIFEST_SCHEMA_VERSION, "manifest")
    shards = document.get("shards")
    totals = document.get("totals")
    if not isinstance(shards, list) or not isinstance(totals, dict):
        _fail("manifest: shards/totals sections missing")
    opened = totals.get("spans_opened")
    emitted = totals.get("spans_emitted")
    sampled = totals.get("spans_sampled_out")
    dropped = totals.get("spans_dropped")
    if not all(isinstance(v, int)
               for v in (opened, emitted, sampled, dropped)):
        _fail("manifest: lossiness totals must be integers")
    if opened != _t.cast(int, emitted) + _t.cast(int, sampled) \
            + _t.cast(int, dropped):
        _fail(f"manifest: lossiness ledger does not balance: "
              f"{opened} opened != {emitted} emitted + {sampled} "
              f"sampled out + {dropped} dropped")
    shard_records = shard_spans = 0
    for index, shard in enumerate(shards):
        if not isinstance(shard, dict):
            _fail(f"manifest: shards[{index}] is not an object")
        for field in ("name", "records", "spans", "bytes", "sha256"):
            if field not in shard:
                _fail(f"manifest: shards[{index}] missing {field!r}")
        shard_records += _t.cast(int, shard["records"])
        shard_spans += _t.cast(int, shard["spans"])
        if directory is not None:
            path = os.path.join(directory, _t.cast(str, shard["name"]))
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as error:
                _fail(f"manifest: shard {shard['name']!r} unreadable: "
                      f"{error}")
            if len(data) != shard["bytes"]:
                _fail(f"manifest: shard {shard['name']!r} is {len(data)} "
                      f"bytes on disk, manifest says {shard['bytes']}")
            digest = hashlib.sha256(data).hexdigest()
            if digest != shard["sha256"]:
                _fail(f"manifest: shard {shard['name']!r} sha256 "
                      f"mismatch (corrupt or rewritten)")
            lines = data.count(b"\n")
            if lines != shard["records"]:
                _fail(f"manifest: shard {shard['name']!r} holds {lines} "
                      f"records, manifest says {shard['records']}")
    if shard_records != totals.get("records"):
        _fail("manifest: shard record counts do not sum to totals")
    if shard_spans != emitted:
        _fail("manifest: shard span counts do not sum to spans_emitted")
    return {"shards": len(shards), "records": shard_records,
            "spans_emitted": _t.cast(int, emitted),
            "spans_sampled_out": _t.cast(int, sampled),
            "spans_dropped": _t.cast(int, dropped),
            "verified": directory is not None}


def validate_merged_manifest_document(
        document: _t.Mapping[str, object], *,
        directory: str | None = None) -> dict[str, object]:
    """Structural + invariant checks over a merged fleet manifest.

    Each per-task section must itself satisfy the single-spool manifest
    invariants (lossiness ledger, shard sums), the roll-up totals must
    equal the sum of the task totals, and — when the merged manifest
    sits in its merge root — every task's own ``manifest.json`` and
    shard files are cross-checked on disk.
    """
    import os

    from .stream import (
        MANIFEST_SCHEMA_VERSION,
        MERGED_MANIFEST_SCHEMA_VERSION,
    )

    _check_version(document, MERGED_MANIFEST_SCHEMA_VERSION,
                   "merged manifest")
    tasks = document.get("tasks")
    totals = document.get("totals")
    if not isinstance(tasks, dict) or not isinstance(totals, dict):
        _fail("merged manifest: tasks/totals sections missing")
    if document.get("task_count") != len(tasks):
        _fail(f"merged manifest: task_count {document.get('task_count')!r} "
              f"does not match {len(tasks)} tasks")
    summed: dict[str, int] = {}
    shard_count = 0
    for key in tasks:
        task = tasks[key]
        if not isinstance(task, dict):
            _fail(f"merged manifest: task {key!r} is not an object")
        for field in ("directory", "shards", "totals"):
            if field not in task:
                _fail(f"merged manifest: task {key!r} missing {field!r}")
        subdir = _t.cast(str, task["directory"])
        if os.path.isabs(subdir):
            _fail(f"merged manifest: task {key!r} records an absolute "
                  f"spool path {subdir!r}")
        # Re-use the single-spool invariants by reshaping the section
        # into a manifest document (same shards/totals layout).
        spool_dir = (os.path.join(directory, subdir)
                     if directory is not None else None)
        validate_manifest_document(
            {"schema_version": MANIFEST_SCHEMA_VERSION,
             "shards": task["shards"], "totals": task["totals"]},
            directory=spool_dir)
        shard_count += len(_t.cast(list, task["shards"]))
        for name, value in _t.cast(dict, task["totals"]).items():
            summed[name] = summed.get(name, 0) + int(value)
    if document.get("shard_count") != shard_count:
        _fail(f"merged manifest: shard_count "
              f"{document.get('shard_count')!r} does not match "
              f"{shard_count} listed shards")
    for name, value in summed.items():
        if totals.get(name) != value:
            _fail(f"merged manifest: totals.{name} is "
                  f"{totals.get(name)!r}, task sections sum to {value}")
    return {"tasks": len(tasks), "shards": shard_count,
            "records": summed.get("records", 0),
            "spans_emitted": summed.get("spans_emitted", 0),
            "verified": directory is not None}


def _validate_shard_record(record: object, where: str) -> str:
    if not isinstance(record, dict):
        _fail(f"{where}: not an object")
    kind = record.get("k")
    fields = SHARD_RECORD_FIELDS.get(_t.cast(str, kind))
    if fields is None:
        _fail(f"{where}: unknown record kind {kind!r}")
    for field in fields:
        if field not in record:
            _fail(f"{where}: {kind!r} record missing {field!r}")
    if not isinstance(record["rsr"], int):
        _fail(f"{where}: rsr must be an integer")
    return _t.cast(str, kind)


def validate_shard_lines(lines: _t.Iterable[str], *,
                         name: str = "shard") -> dict[str, object]:
    """Validate a stream shard's JSONL records line by line."""
    counts = {kind: 0 for kind in SHARD_RECORD_FIELDS}
    total = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            _fail(f"{name}:{number}: blank line in shard")
        where = f"{name}:{number}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            _fail(f"{where}: not valid JSON: {error}")
        counts[_validate_shard_record(record, where)] += 1
        total += 1
    if total == 0:
        _fail(f"{name}: shard holds no records")
    return {"records": total, **{f"kind_{k}": v for k, v in counts.items()}}


#: Analysis-document schemas to their validators (sniffed by schema id).
ANALYSIS_VALIDATORS: dict[str, _t.Callable[
    [_t.Mapping[str, object]], dict[str, object]]] = {
    "repro.obs.timeline": validate_timeline_document,
    "repro.obs.graph": validate_graph_document,
    "repro.obs.critpath": validate_critpath_document,
    "repro.place.plan": validate_placement_document,
}


def validate_file(path: str) -> tuple[str, dict[str, object]]:
    """Sniff ``path`` and validate it; returns (document kind, summary)."""
    import os

    from ..bench.record import SCHEMA, validate_record_document
    from .stream import MANIFEST_SCHEMA, MERGED_MANIFEST_SCHEMA

    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError:
            # Not one JSON document: validate as a JSONL stream shard.
            handle.seek(0)
            return "shard", validate_shard_lines(
                handle, name=os.path.basename(path))
    if isinstance(document, dict):
        schema = document.get("schema")
        if schema == SCHEMA:
            summary = validate_record_document(document)
            summary.update(validate_load_record(document))
            return "record", summary
        if schema == MANIFEST_SCHEMA:
            return "manifest", validate_manifest_document(
                document, directory=os.path.dirname(path) or ".")
        if schema == MERGED_MANIFEST_SCHEMA:
            return "merged-manifest", validate_merged_manifest_document(
                document, directory=os.path.dirname(path) or ".")
        if isinstance(schema, str) and schema in ANALYSIS_VALIDATORS:
            return (schema.rsplit(".", 1)[-1],
                    ANALYSIS_VALIDATORS[schema](document))
        if "k" in document:  # a one-record shard parses as one object
            return "shard", validate_shard_lines(
                [json.dumps(document)], name=os.path.basename(path))
    return "trace", validate_trace_document(document)


def main(argv: _t.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE_OR_RECORD.json",
              file=sys.stderr)
        return 2
    try:
        kind, summary = validate_file(argv[0])
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    if kind == "record":
        print(f"OK: bench record with {summary['metrics']} metrics "
              f"across {summary['artefacts']} artefacts, "
              f"{summary['load_scenarios']} load scenarios, "
              f"{summary['capacity_searches']} capacity searches")
    elif kind == "timeline":
        print(f"OK: timeline with {summary['counter_series']} counter "
              f"series, {summary['histogram_series']} histogram series "
              f"({summary['histogram_samples']} samples)")
    elif kind == "graph":
        print(f"OK: comm graph with {summary['nodes']} nodes, "
              f"{summary['edges']} edges ({summary['messages']} msgs / "
              f"{summary['bytes']} B)")
    elif kind == "critpath":
        print(f"OK: {summary['paths']} critical paths "
              f"({summary['steps']} steps)")
    elif kind == "plan":
        where = ("direct" if summary["forwarder"] is None
                 else f"forward@{summary['forwarder']}")
        print(f"OK: placement plan {where} "
              f"({summary['method']}->{summary['fast_method']}), "
              f"{summary['ranks']} assigned ranks")
    elif kind == "manifest":
        verified = ("shards verified on disk" if summary["verified"]
                    else "shards not cross-checked")
        print(f"OK: stream manifest with {summary['shards']} shards / "
              f"{summary['records']} records "
              f"({summary['spans_emitted']} spans emitted, "
              f"{summary['spans_sampled_out']} sampled out, "
              f"{summary['spans_dropped']} dropped; {verified})")
    elif kind == "merged-manifest":
        verified = ("spools verified on disk" if summary["verified"]
                    else "spools not cross-checked")
        print(f"OK: merged fleet manifest with {summary['tasks']} task "
              f"spools / {summary['shards']} shards "
              f"({summary['records']} records, "
              f"{summary['spans_emitted']} spans emitted; {verified})")
    elif kind == "shard":
        print(f"OK: stream shard with {summary['records']} records "
              f"({summary['kind_s']} spans, {summary['kind_d']} "
              f"deliveries, {summary['kind_x']} drops, "
              f"{summary['kind_r']} resolutions)")
    else:
        print(f"OK: {summary['span_events']} spans over "
              f"{summary['rsrs']} RSRs "
              f"({summary['full_lifecycles']} full lifecycles), "
              f"{summary['latency_histograms']} latency histograms")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
