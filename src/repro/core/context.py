"""Nexus contexts: address spaces / virtual processors.

"We refer to an address space, or virtual processor, as a *context*."
A context owns handlers, endpoints, startpoints, its communication
descriptor table (the methods by which it can be reached), per-method
message inboxes and device queues, the comm-object cache, and a
:class:`~repro.core.polling.PollManager`.
"""

from __future__ import annotations

import itertools
import typing as _t

from ..simnet.events import Event
from ..simnet.resources import Store
from ..transports.base import Descriptor, InTransitMessage, WireMessage
from .buffers import Buffer
from .commobject import CommObject, comm_object_key
from .descriptor_table import CommDescriptorTable
from .endpoint import Endpoint
from .errors import HandlerError, NexusError
from .health import HealthTracker
from .polling import PollManager
from .selection import FirstApplicable, SelectionPolicy
from .startpoint import Startpoint, WireStartpoint

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..simnet.node import Host
    from .runtime import Nexus

_context_ids = itertools.count(1)

#: Handler signature: (context, endpoint, buffer) -> None | generator.
#: Returning a generator makes the handler *threaded*: it is spawned as a
#: simulated process and may itself block (issue RSRs, wait, compute).
Handler = _t.Callable[["Context", Endpoint | None, Buffer], object]


class Context:
    """One address space participating in a Nexus computation.

    Do not instantiate directly; use :meth:`Nexus.context`.
    """

    def __init__(self, nexus: "Nexus", host: "Host", name: str,
                 methods: _t.Sequence[str] | None = None,
                 policy: SelectionPolicy | None = None):
        self.id: int = next(_context_ids)
        self.nexus = nexus
        self.host = host
        self.name = name
        self.handlers: dict[str, Handler] = {}
        self.endpoints: dict[int, Endpoint] = {}
        self.selection_policy: SelectionPolicy = policy or FirstApplicable()

        self._export_table = self._build_export_table(methods)
        self._inboxes: dict[str, Store] = {}
        self._device_queues: dict[str, list[InTransitMessage]] = {}
        #: Per-method device-busy horizon (fast-transport FIFO drain).
        self.device_busy: dict[str, float] = {}
        #: Monotone accumulator of device-stealing poll time (see
        #: :mod:`repro.transports.fastbase`).
        self.foreign_poll_total: float = 0.0

        self.poll_manager = PollManager(self, self._export_table.methods)
        #: Per-(remote context, method) delivery health (failover ladder).
        self.health = HealthTracker(nexus.sim, nexus.health_config)
        self._comm_objects: dict[tuple, CommObject] = {}
        self._arrival_waiters: list[Event] = []
        #: Installed by :class:`repro.core.forwarding.ForwardingService`
        #: on the designated forwarder context.
        self.forwarder: object | None = None
        self.rsrs_dispatched = 0

    # -- descriptor table -----------------------------------------------------

    def _build_export_table(self, methods: _t.Sequence[str] | None
                            ) -> CommDescriptorTable:
        registry = self.nexus.transports
        wanted = list(methods) if methods is not None else registry.names()
        table = CommDescriptorTable()
        for name in wanted:
            if name not in registry:
                raise NexusError(
                    f"context {self.name!r} requests transport {name!r} "
                    "which is not enabled in this runtime"
                )
            descriptor = registry.get(name).export_descriptor(self)
            if descriptor is not None:
                table.add(descriptor)
        # Fastest-first ordering realises the automatic fastest-first policy.
        table.reorder(sorted(table.methods,
                             key=lambda n: registry.get(n).speed_rank))
        return table

    def export_table(self) -> CommDescriptorTable:
        """This context's descriptor table (live object; edits influence
        future binds and the poll set is *not* affected)."""
        return self._export_table

    # -- handlers ------------------------------------------------------------

    def register_handler(self, name: str, handler: Handler) -> None:
        """Register ``handler`` under ``name`` for incoming RSRs."""
        self.handlers[name] = handler

    def unregister_handler(self, name: str) -> None:
        self.handlers.pop(name, None)

    # -- endpoints & startpoints ------------------------------------------------

    def new_endpoint(self, bound_object: object = None) -> Endpoint:
        """Create an endpoint in this context (optionally bound to a
        local object, making linked startpoints global pointers to it)."""
        endpoint = Endpoint(self, bound_object)
        self.endpoints[endpoint.id] = endpoint
        return endpoint

    def destroy_endpoint(self, endpoint: Endpoint) -> None:
        self.endpoints.pop(endpoint.id, None)

    def new_startpoint(self, policy: SelectionPolicy | None = None
                       ) -> Startpoint:
        """Create an unbound startpoint owned by this context."""
        return Startpoint(self, policy=policy)

    def startpoint_to(self, endpoint: Endpoint,
                      policy: SelectionPolicy | None = None) -> Startpoint:
        """Convenience: a startpoint already bound to ``endpoint``."""
        return self.new_startpoint(policy=policy).bind(endpoint)

    def import_startpoint(self, wire: WireStartpoint,
                          policy: SelectionPolicy | None = None) -> Startpoint:
        """Receive a startpoint copied from another context.

        Mirrors the original's links; each link carries the serialised
        descriptor table (or, for lightweight startpoints, the referenced
        context's default table — the paper's optimisation for tightly
        coupled systems where a default table is "used repeatedly").
        """
        startpoint = Startpoint(self, policy=policy)
        for link in wire.links:
            if link.table_wire is not None:
                table = CommDescriptorTable.from_wire(link.table_wire)
            else:
                table = self.nexus.default_table_for(link.context_id)
            startpoint.bind_address(link.context_id, link.endpoint_id, table)
            # Mobile startpoints carry the sender's health view: methods
            # it saw down get seeded down here too (a cool-off probe will
            # re-check them from this side).
            for method in getattr(link, "down_methods", ()):
                self.health.mark_down(link.context_id, method)
        self.nexus.tracer.incr("nexus.startpoints_imported")
        return startpoint

    # -- comm objects ----------------------------------------------------------------

    def comm_object_for(self, descriptor: Descriptor) -> CommObject:
        """The shared comm object for ``descriptor`` (created on demand).

        "Communication objects are shared among startpoints that
        reference the same context and use the same communication
        method."
        """
        key = comm_object_key(descriptor)
        comm = self._comm_objects.get(key)
        if comm is None:
            transport = self.nexus.transports.get(descriptor.method)
            comm = CommObject(self, transport, descriptor)
            self._comm_objects[key] = comm
        return comm

    def comm_objects(self) -> list[CommObject]:
        """All live comm objects (enquiry)."""
        return list(self._comm_objects.values())

    # -- transport-facing surface (ContextLike) ------------------------------------

    def inbox(self, method: str) -> Store:
        store = self._inboxes.get(method)
        if store is None:
            store = Store(self.nexus.sim, name=f"inbox:{method}@ctx{self.id}")
            self._inboxes[method] = store
        return store

    def device_queue(self, method: str) -> list[InTransitMessage]:
        queue = self._device_queues.get(method)
        if queue is None:
            queue = []
            self._device_queues[method] = queue
        return queue

    def note_arrival(self) -> None:
        """Wake any process fast-forwarding through an idle wait."""
        waiters, self._arrival_waiters = self._arrival_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def arrival_signal(self) -> Event:
        """A one-shot event triggered at the next message arrival."""
        event = self.nexus.sim.event(name=f"arrival@ctx{self.id}")
        self._arrival_waiters.append(event)
        return event

    # -- time accounting --------------------------------------------------------------

    def charge(self, seconds: float):
        """Generator: consume ``seconds`` of this context's (virtual) CPU."""
        if seconds > 0:
            yield self.nexus.sim.timeout(seconds)

    def compute(self, seconds: float):
        """Generator: perform ``seconds`` of application computation,
        contending for the host CPU with co-resident contexts."""
        yield from self.host.compute(seconds)

    # -- receive path ------------------------------------------------------------------

    def dispatch(self, message: WireMessage):
        """Generator: decode one arrived RSR and run its handler.

        Charges the Nexus dispatch cost plus the transport's per-message
        receive overhead.  Handlers returning a generator run as a new
        simulated process (threaded handler); plain handlers run inline.
        Messages addressed to another context are passed to the
        forwarding service if one is installed here.
        """
        if message.dst_context not in (self.id, -1):
            if self.forwarder is None:
                raise NexusError(
                    f"context {self.id} received a message for context "
                    f"{message.dst_context} but is not a forwarder"
                )
            yield from self.forwarder.forward(self, message)  # type: ignore[attr-defined]
            return

        nexus = self.nexus
        trace = message.trace
        if trace is not None:
            trace.transition("dispatch", ctx=self.id,
                             handler=message.handler)
        costs = nexus.runtime_costs.dispatch_cost
        # Direct registry-dict lookup (dispatch runs once per message;
        # the ``in``/``get`` pair costs two call frames).
        transport = (nexus.transports._transports.get(message.method)
                     if message.method else None)
        if transport is not None:
            tc = transport.costs
            costs += tc.recv_overhead + tc.per_byte_recv * message.nbytes
        # Receive-side CPU deposited by protocol layers (decompression,
        # checksum verification, reassembly).
        costs += _t.cast(float, message.headers.pop("extra_recv_cpu", 0.0))
        costs += self._conversion_cost(message)
        if costs > 0:
            # Inlined self.charge(costs) — dispatch runs per message.
            yield nexus.sim.timeout(costs)

        endpoint_id = message.endpoint_id
        if message.dst_context == -1:
            endpoints = _t.cast(dict, message.headers.get("endpoints", {}))
            endpoint_id = endpoints.get(self.id, endpoint_id)
        endpoint = self.endpoints.get(endpoint_id)
        if endpoint is None:
            raise HandlerError(
                f"RSR {message.handler!r} addressed unknown endpoint "
                f"{endpoint_id} in context {self.id}"
            )
        handler = self.handlers.get(message.handler)
        if handler is None:
            raise HandlerError(
                f"context {self.id} has no handler {message.handler!r}"
            )

        payload = message.payload
        if isinstance(payload, Buffer):
            payload = payload.reader_copy()
        endpoint.note_delivery(message.nbytes, nexus.sim.now)
        self.rsrs_dispatched += 1
        nexus.tracer.incr("nexus.rsrs_dispatched")

        if trace is not None:
            trace.transition("handler", ctx=self.id)
        result = handler(self, endpoint, _t.cast(Buffer, payload))
        threaded = result is not None and hasattr(result, "send")
        if trace is not None:
            trace.finish(nexus.sim.now, threaded=threaded)
        if threaded:
            # Threaded handler: runs concurrently, may block.
            nexus.sim.spawn(_t.cast(_t.Generator, result),
                            name=f"handler:{message.handler}@ctx{self.id}")
        # A completed dispatch may have satisfied a condition another
        # process in this context is waiting on (e.g. an MPI match made by
        # a forwarder service loop or blocking watcher while the
        # application idles); wake idle waiters so they re-check.
        self.note_arrival()

    def _conversion_cost(self, message: WireMessage) -> float:
        """Data-representation (XDR) conversion cost for heterogeneous
        traffic: charged when sender and receiver architectures differ."""
        my_arch = self.host.attributes.get("arch")
        if my_arch is None:
            return 0.0
        try:
            sender = self.nexus._resolve_context(message.src_context)
        except NexusError:
            return 0.0
        their_arch = sender.host.attributes.get("arch")
        if their_arch is None or their_arch == my_arch:
            return 0.0
        self.nexus.tracer.incr("nexus.xdr_conversions")
        return self.nexus.runtime_costs.xdr_per_byte * message.nbytes

    # -- convenience -----------------------------------------------------------

    def poll(self):
        """Generator: one explicit run of the polling function."""
        result = yield from self.poll_manager.poll()
        return result

    def wait(self, condition: _t.Callable[[], bool] | Event):
        """Generator: poll until ``condition`` holds (see PollManager.wait)."""
        yield from self.poll_manager.wait(condition)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Context {self.name!r} id={self.id} host={self.host.name!r} "
                f"methods={self._export_table.methods}>")
