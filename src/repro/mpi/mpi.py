"""Mini-MPI on Nexus: two-sided message passing over one-sided RSRs.

This reproduces the structure of the MPICH-on-Nexus implementation the
paper used for the climate model: every MPI process is one Nexus context
holding a matching engine; ``MPI_Send`` becomes an RSR to the
destination's ``__mpi__`` handler; receives poll the matching queues via
the context wait loop (so every MPI call exercises the multimethod
polling machinery, exactly as in the paper).  The layering adds a small
per-call CPU overhead (:class:`MpiConfig`), the analogue of the ~6 %
execution-time overhead the paper measured for MPICH on Nexus vs MPICH
on MPL.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

import numpy as np

from ..core.buffers import Buffer
from ..core.context import Context
from ..core.endpoint import Endpoint
from ..core.runtime import Nexus
from ..core.startpoint import Startpoint
from .communicator import Communicator
from .datatypes import Payload, pack_payload, payload_nbytes, unpack_payload
from .errors import MpiError, RankError
from .matching import MatchingQueues, MpiMessage, PostedRecv
from .request import RecvRequest, Request, SendRequest, wait_all
from .status import ANY_SOURCE, ANY_TAG, Status
from . import collectives as _collectives

#: Envelope overhead added by the MPI layer on top of the Nexus header.
MPI_ENVELOPE_BYTES = 24


@dataclasses.dataclass(frozen=True)
class MpiConfig:
    """Costs and protocol settings of the MPI-on-Nexus layering.

    ``call_overhead`` is charged once per MPI call (send, recv, and each
    internal collective step); set it to 0.0 to model MPICH-on-MPL for
    the layering ablation.

    ``eager_threshold`` switches sends of at least that many payload
    bytes to the **rendezvous protocol** (RTS envelope → CTS grant →
    DATA transfer): large messages never sit copied in the receiver's
    unexpected queue, at the cost of an extra round trip.  ``None``
    (the default) keeps every send eager, matching the paper-era MPICH
    configuration the calibrated experiments assume.
    """

    call_overhead: float = 4e-6
    eager_threshold: int | None = None


#: Envelope kinds on the __mpi__ wire.
_K_EAGER = 0
_K_RTS = 1
_K_CTS = 2
_K_DATA = 3

#: Wire size of RTS/CTS/DATA control headers.
RENDEZVOUS_HEADER_BYTES = 16


class MpiProcess:
    """One MPI process: a rank bound to a Nexus context."""

    def __init__(self, world: "MPIWorld", rank: int, context: Context):
        self.world = world
        self.rank = rank
        self.context = context
        self.matching = MatchingQueues()
        self._startpoints: dict[int, Startpoint] = {}
        self._coll_seq: dict[int, int] = {}
        self.endpoint: Endpoint = context.new_endpoint(bound_object=self)
        context.register_handler("__mpi__", _mpi_handler)
        self.sends = 0
        self.recvs = 0
        self.bytes_sent = 0
        # Rendezvous state: outgoing payloads parked until CTS, and
        # matched-but-empty receives awaiting their DATA transfer.
        self._rdv_tokens = itertools.count(1)
        self._pending_sends: dict[int, tuple[Payload, int, float]] = {}
        self._awaiting_data: dict[int, "PostedRecv"] = {}
        self.rendezvous_sends = 0

    # -- infrastructure -----------------------------------------------------

    @property
    def nexus(self) -> Nexus:
        return self.world.nexus

    @property
    def comm_world(self) -> Communicator:
        return self.world.comm_world

    def startpoint_to(self, world_rank: int) -> Startpoint:
        sp = self._startpoints.get(world_rank)
        if sp is None:
            raise RankError(f"rank {self.rank} has no route to {world_rank}")
        return sp

    def _charge_layer(self):
        overhead = self.world.config.call_overhead
        if overhead > 0.0:
            yield from self.context.charge(overhead)

    def _resolve_comm(self, comm: Communicator | None) -> Communicator:
        communicator = comm or self.world.comm_world
        if not communicator.contains_world(self.rank):
            raise RankError(
                f"rank {self.rank} is not a member of communicator "
                f"{communicator.id}"
            )
        return communicator

    def next_collective_tag(self, comm: Communicator) -> int:
        """Per-communicator collective sequence number.

        All members execute collectives in the same order (an MPI
        requirement), so equal sequence numbers identify one operation.
        """
        seq = self._coll_seq.get(comm.id, 0) + 1
        self._coll_seq[comm.id] = seq
        return seq

    # -- point-to-point ------------------------------------------------------------

    def _send_body(self, data: Payload, dest: int, tag: int,
                   comm: Communicator, context_id: int):
        my_rank = comm.rank_of_world(self.rank)
        if not (0 <= dest < comm.size):
            raise RankError(f"destination rank {dest} out of range")
        nbytes = payload_nbytes(data)
        threshold = self.world.config.eager_threshold
        sp = self.startpoint_to(comm.world_rank(dest))
        self.sends += 1

        if threshold is not None and nbytes >= threshold:
            # Rendezvous: ship only the envelope; park the payload.
            token = next(self._rdv_tokens)
            self._pending_sends[token] = (data, comm.world_rank(dest),
                                          self.nexus.sim.now)
            self.rendezvous_sends += 1
            envelope = Buffer()
            envelope.put_int(_K_RTS)
            envelope.put_int(context_id)
            envelope.put_int(tag)
            envelope.put_int(my_rank)
            envelope.put_float(self.nexus.sim.now)
            envelope.put_int(nbytes)
            envelope.put_int(token)
            envelope.put_int(self.rank)  # world rank for the CTS reply
            envelope.put_padding(RENDEZVOUS_HEADER_BYTES)
            self.bytes_sent += envelope.nbytes
            yield from sp.rsr("__mpi__", envelope)
            # Drive progress until the receiver grants the transfer (the
            # CTS arrives via our own poll loop); the DATA ships from a
            # spawned process so we return as soon as it is on its way.
            yield from self.context.wait(
                lambda: token not in self._pending_sends)
            return

        buffer = Buffer()
        buffer.put_int(_K_EAGER)
        buffer.put_int(context_id)
        buffer.put_int(tag)
        buffer.put_int(my_rank)
        buffer.put_float(self.nexus.sim.now)
        buffer.put_int(nbytes)
        pack_payload(buffer, data)
        self.bytes_sent += buffer.nbytes
        yield from sp.rsr("__mpi__", buffer)

    # -- rendezvous plumbing ------------------------------------------------

    def _grant_rendezvous(self, message: "MpiMessage",
                          posted: "PostedRecv") -> None:
        """A matched RTS: remember the waiting receive and send the CTS."""
        token = message.pending_token
        assert token is not None
        self._awaiting_data[token] = posted
        sender_world = _t.cast(int, message.sender_world)

        def send_cts():
            cts = Buffer()
            cts.put_int(_K_CTS)
            cts.put_int(token)
            cts.put_padding(RENDEZVOUS_HEADER_BYTES)
            sp = self.startpoint_to(sender_world)
            yield from sp.rsr("__mpi__", cts)

        self.nexus.spawn(send_cts(), name=f"mpi-cts:r{self.rank}")

    def _release_rendezvous(self, token: int) -> None:
        """A CTS arrived: ship the parked payload as DATA."""
        data, dest_world, _queued_at = self._pending_sends.pop(token)

        def send_data():
            payload = Buffer()
            payload.put_int(_K_DATA)
            payload.put_int(token)
            pack_payload(payload, data)
            sp = self.startpoint_to(dest_world)
            yield from sp.rsr("__mpi__", payload)

        self.nexus.spawn(send_data(), name=f"mpi-data:r{self.rank}")

    def _complete_rendezvous(self, token: int, payload: Payload) -> None:
        """The DATA transfer landed: finish the matched receive."""
        posted = self._awaiting_data.pop(token)
        assert posted.message is not None
        posted.message.payload = payload
        posted.data_arrived = True

    def send(self, data: Payload, dest: int, tag: int = 0,
             comm: Communicator | None = None, *, collective: bool = False):
        """Generator: blocking standard-mode send (eager protocol)."""
        communicator = self._resolve_comm(comm)
        yield from self._charge_layer()
        context_id = (communicator.collective_context if collective
                      else communicator.p2p_context)
        yield from self._send_body(data, dest, tag, communicator, context_id)

    def isend(self, data: Payload, dest: int, tag: int = 0,
              comm: Communicator | None = None, *,
              collective: bool = False) -> SendRequest:
        """Nonblocking send: returns a request, transfer proceeds
        concurrently."""
        communicator = self._resolve_comm(comm)
        context_id = (communicator.collective_context if collective
                      else communicator.p2p_context)

        def body():
            yield from self._charge_layer()
            yield from self._send_body(data, dest, tag, communicator,
                                       context_id)

        process = self.nexus.spawn(
            body(), name=f"isend:r{self.rank}->r{dest}")
        return SendRequest(self, process)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None, *,
              collective: bool = False) -> RecvRequest:
        """Nonblocking receive: posts the match and returns a request."""
        communicator = self._resolve_comm(comm)
        context_id = (communicator.collective_context if collective
                      else communicator.p2p_context)
        posted = self.matching.post(context_id, source, tag)
        message = posted.message
        obs = self.nexus.obs
        if obs.enabled and message is not None:
            # How long the message sat in the unexpected queue before a
            # matching receive was posted — the cost of late receives.
            obs.metrics.histogram(
                "mpi_unexpected_dwell_us", rank=self.rank,
            ).observe((self.nexus.sim.now - message.arrived_at) * 1e6)
        if (message is not None and message.pending_token is not None
                and message.pending_token not in self._awaiting_data):
            # Matched an unexpected RTS: grant the transfer now.
            self._grant_rendezvous(message, posted)
        return RecvRequest(self, posted)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Communicator | None = None, *, collective: bool = False):
        """Generator: blocking receive → ``(data, status)``."""
        yield from self._charge_layer()
        request = self.irecv(source, tag, comm, collective=collective)
        self.recvs += 1
        result = yield from request.wait()
        return result

    def sendrecv(self, data: Payload, dest: int, sendtag: int,
                 source: int, recvtag: int,
                 comm: Communicator | None = None, *,
                 collective: bool = False):
        """Generator: simultaneous send+receive (deadlock-free pairwise
        exchange) → ``(data, status)`` of the received message."""
        request = self.irecv(source, recvtag, comm, collective=collective)
        yield from self.send(data, dest, sendtag, comm, collective=collective)
        self.recvs += 1
        result = yield from request.wait()
        return result

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               comm: Communicator | None = None) -> Status | None:
        """Nonblocking probe: status of a matchable unexpected message."""
        communicator = self._resolve_comm(comm)
        message = self.matching.probe(communicator.p2p_context, source, tag)
        if message is None:
            return None
        return Status(source=message.source, tag=message.tag,
                      nbytes=message.nbytes, sent_at=message.sent_at,
                      received_at=self.nexus.sim.now)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None):
        """Generator: blocking probe (polls until a match is queued)."""
        yield from self.context.wait(
            lambda: self.iprobe(source, tag, comm) is not None)
        return self.iprobe(source, tag, comm)

    def wait_all(self, requests: _t.Sequence[Request]):
        """Generator: MPI_Waitall."""
        result = yield from wait_all(requests)
        return result

    # -- collectives (delegating to repro.mpi.collectives) ---------------------

    def barrier(self, comm: Communicator | None = None):
        yield from _collectives.barrier(self, self._resolve_comm(comm))

    def bcast(self, value: Payload, root: int = 0,
              comm: Communicator | None = None):
        result = yield from _collectives.bcast(
            self, value, root, self._resolve_comm(comm))
        return result

    def reduce(self, value: Payload, op: str | _t.Callable = "sum",
               root: int = 0, comm: Communicator | None = None):
        result = yield from _collectives.reduce(
            self, value, op, root, self._resolve_comm(comm))
        return result

    def allreduce(self, value: Payload, op: str | _t.Callable = "sum",
                  comm: Communicator | None = None):
        result = yield from _collectives.allreduce(
            self, value, op, self._resolve_comm(comm))
        return result

    def gather(self, value: Payload, root: int = 0,
               comm: Communicator | None = None):
        result = yield from _collectives.gather(
            self, value, root, self._resolve_comm(comm))
        return result

    def allgather(self, value: Payload, comm: Communicator | None = None):
        result = yield from _collectives.allgather(
            self, value, self._resolve_comm(comm))
        return result

    def scatter(self, values: _t.Sequence[Payload] | None, root: int = 0,
                comm: Communicator | None = None):
        result = yield from _collectives.scatter(
            self, values, root, self._resolve_comm(comm))
        return result

    def alltoall(self, values: _t.Sequence[Payload],
                 comm: Communicator | None = None):
        result = yield from _collectives.alltoall(
            self, values, self._resolve_comm(comm))
        return result

    def scan(self, value: Payload, op: str | _t.Callable = "sum",
             comm: Communicator | None = None, *, exclusive: bool = False):
        result = yield from _collectives.scan(
            self, value, op, self._resolve_comm(comm), exclusive=exclusive)
        return result

    def reduce_scatter(self, values: _t.Sequence[Payload],
                       op: str | _t.Callable = "sum",
                       comm: Communicator | None = None):
        result = yield from _collectives.reduce_scatter(
            self, values, op, self._resolve_comm(comm))
        return result

    def comm_split(self, color: int, key: int = 0,
                   comm: Communicator | None = None):
        """Generator: MPI_Comm_split — collective over ``comm``.

        Every member contributes ``(color, key)``; members sharing a
        color form a new communicator, ranked by ``(key, old rank)``.
        Returns this process's new communicator (``None`` for the MPI
        ``MPI_UNDEFINED`` convention when ``color < 0``).
        """
        communicator = self._resolve_comm(comm)
        my_rank = communicator.rank_of_world(self.rank)
        pairs = yield from _collectives.allgather(
            self, (color, key, my_rank), communicator)
        groups: dict[int, list[tuple[int, int]]] = {}
        for entry in _t.cast(list, pairs):
            entry_color, entry_key, entry_rank = _t.cast(tuple, entry)
            if entry_color >= 0:
                groups.setdefault(entry_color, []).append(
                    (entry_key, entry_rank))
        if color < 0:
            return None
        members = [rank for _key, rank in sorted(groups[color])]
        world_ranks = [communicator.world_rank(r) for r in members]
        # Every member computes the identical group deterministically, so
        # the shared Communicator ids stay consistent: build it once per
        # (world, group) signature.
        return self.world._split_comm(tuple(world_ranks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MpiProcess rank={self.rank} ctx={self.context.id}>"


def _mpi_handler(context: Context, endpoint: Endpoint | None,
                 buffer: Buffer) -> None:
    """The ``__mpi__`` RSR handler: decode the envelope and hand the
    message to the owning process's matching engine (inline, non-threaded
    — matching is cheap and must not reorder).  Also services the
    rendezvous control messages (RTS/CTS/DATA)."""
    assert endpoint is not None
    proc = _t.cast(MpiProcess, endpoint.bound_object)
    kind = buffer.get_int()

    if kind == _K_CTS:
        proc._release_rendezvous(buffer.get_int())
        return
    if kind == _K_DATA:
        token = buffer.get_int()
        proc._complete_rendezvous(token, unpack_payload(buffer))
        return

    context_id = buffer.get_int()
    tag = buffer.get_int()
    source = buffer.get_int()
    sent_at = buffer.get_float()
    nbytes = buffer.get_int()

    if kind == _K_RTS:
        token = buffer.get_int()
        sender_world = buffer.get_int()
        message = MpiMessage(
            context_id=context_id, source=source, tag=tag, payload=None,
            nbytes=nbytes + MPI_ENVELOPE_BYTES, sent_at=sent_at,
            arrived_at=context.nexus.sim.now, pending_token=token,
            sender_world=sender_world,
        )
        posted = proc.matching.deliver(message)
        if posted is not None:
            proc._grant_rendezvous(message, posted)
        return

    payload = unpack_payload(buffer)
    message = MpiMessage(
        context_id=context_id, source=source, tag=tag, payload=payload,
        nbytes=nbytes + MPI_ENVELOPE_BYTES, sent_at=sent_at,
        arrived_at=context.nexus.sim.now,
    )
    matched = proc.matching.deliver(message)
    obs = context.nexus.obs
    if obs.enabled and matched is None:
        obs.metrics.gauge("mpi_unexpected_depth", rank=proc.rank).set(
            float(len(proc.matching.unexpected)))


class MPIWorld:
    """All MPI processes of one application.

    Builds one :class:`MpiProcess` per context and wires the full mesh of
    startpoints (each process receives a copy of every peer's startpoint
    together with its descriptor table — the out-of-band startup exchange
    a process manager performs).
    """

    def __init__(self, nexus: Nexus, contexts: _t.Sequence[Context],
                 config: MpiConfig | None = None):
        if not contexts:
            raise MpiError("an MPI world needs at least one process")
        self.nexus = nexus
        self.config = config or MpiConfig()
        self.processes: list[MpiProcess] = [
            MpiProcess(self, rank, context)
            for rank, context in enumerate(contexts)
        ]
        for proc in self.processes:
            for peer in self.processes:
                sp = proc.context.new_startpoint()
                sp.bind_address(peer.context.id, peer.endpoint.id,
                                peer.context.export_table().copy())
                proc._startpoints[peer.rank] = sp
        self.comm_world = Communicator(self, range(len(self.processes)))
        self._split_cache: dict[tuple[int, ...], Communicator] = {}
        self._split_calls: dict[tuple[int, ...], int] = {}

    def _split_comm(self, world_ranks: tuple[int, ...]) -> Communicator:
        """Shared communicator construction for ``comm_split``.

        All members of one logical split compute the same group signature
        and must receive the *same* Communicator object (so context ids
        match); a subsequent split producing the same group must get a
        fresh one.  Calls are counted per signature: every
        ``len(world_ranks)``-th call starts a new communicator.
        """
        calls = self._split_calls.get(world_ranks, 0)
        if calls % len(world_ranks) == 0:
            self._split_cache[world_ranks] = Communicator(self, world_ranks)
        self._split_calls[world_ranks] = calls + 1
        return self._split_cache[world_ranks]

    @property
    def size(self) -> int:
        return len(self.processes)

    def process(self, rank: int) -> MpiProcess:
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range")
        return self.processes[rank]

    def create_comm(self, world_ranks: _t.Sequence[int]) -> Communicator:
        """A communicator over a subset of world ranks (MPI_Comm_create)."""
        return Communicator(self, world_ranks)

    def run_spmd(self, body: _t.Callable[[MpiProcess], _t.Generator],
                 ranks: _t.Sequence[int] | None = None):
        """Spawn ``body(proc)`` as a process for each rank; returns the
        list of :class:`~repro.simnet.process.Process` handles."""
        selected = (self.processes if ranks is None
                    else [self.process(r) for r in ranks])
        return [
            self.nexus.spawn(body(proc), name=f"mpi:rank{proc.rank}")
            for proc in selected
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MPIWorld size={self.size}>"
