"""`python -m repro.obs.validate` exercised as a CLI (exit codes)."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.obs.validate import main as validate_main


@pytest.fixture(scope="module")
def fresh_trace(tmp_path_factory):
    """A trace written by the real ``--trace`` code path."""
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    assert bench_main(["baselines", "--quick", "--trace", str(path)]) == 0
    return path


class TestValidateCli:
    def test_exit_zero_on_fresh_export(self, fresh_trace, capsys):
        assert validate_main([str(fresh_trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")

    def test_exit_nonzero_on_corrupted_document(self, fresh_trace, tmp_path,
                                                capsys):
        document = json.loads(fresh_trace.read_text())
        for event in document["traceEvents"]:
            event.get("args", {}).pop("rsr", None)  # break causal ids
        corrupted = tmp_path / "corrupted.json"
        corrupted.write_text(json.dumps(document))
        assert validate_main([str(corrupted)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_exit_nonzero_on_truncated_json(self, fresh_trace, tmp_path,
                                            capsys):
        truncated = tmp_path / "truncated.json"
        truncated.write_text(fresh_trace.read_text()[:100])
        assert validate_main([str(truncated)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_exit_nonzero_on_missing_file(self, tmp_path, capsys):
        assert validate_main([str(tmp_path / "absent.json")]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_usage_error(self, capsys):
        assert validate_main([]) == 2
        assert "usage" in capsys.readouterr().err
