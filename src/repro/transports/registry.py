"""Transport registry: the paper's module-loading machinery.

The paper describes several ways communication modules become available
to an executable: a default set compiled into the library, additions via
a resource database, command-line arguments, or program calls — with
dynamic loading for modules absent from the build.  This registry
reproduces all of that in Python terms:

* a built-in default set (:data:`BUILTIN_TRANSPORTS`);
* :meth:`TransportRegistry.enable` — programmatic addition;
* :meth:`TransportRegistry.load` — dynamic loading from a
  ``"package.module:ClassName"`` specification (``importlib``);
* :func:`parse_module_spec` — resource-database / command-line style
  configuration strings such as ``"mpl,tcp,udp"``.
"""

from __future__ import annotations

import importlib
import typing as _t

from .aal5 import Aal5Transport
from .base import Transport, TransportServices
from .costmodels import DEFAULT_COSTS, TransportCosts
from .errors import RegistryError
from .local import LocalTransport
from .mpl import MplTransport
from .multicast import MulticastTransport
from .myrinet import MyrinetTransport
from .secure import SECURE_TCP_COSTS, SecureTcpTransport
from .shm import ShmTransport
from .tcp import TcpTransport
from .udp import UdpTransport

#: All transports compiled into this build, keyed by name.
BUILTIN_TRANSPORTS: dict[str, type[Transport]] = {
    cls.name: cls
    for cls in (
        LocalTransport,
        ShmTransport,
        MplTransport,
        MyrinetTransport,
        Aal5Transport,
        TcpTransport,
        UdpTransport,
        MulticastTransport,
        SecureTcpTransport,
    )
}

#: The default module set built into the library (paper: "when the Nexus
#: library is built, a default set of modules is defined").
DEFAULT_TRANSPORT_SET = ("local", "shm", "mpl", "tcp")


def parse_module_spec(spec: str) -> list[str]:
    """Parse a resource-database / command-line module list.

    ``"mpl, tcp udp"`` → ``["mpl", "tcp", "udp"]``.
    """
    names = [token for chunk in spec.split(",")
             for token in chunk.split() if token]
    for name in names:
        if name not in BUILTIN_TRANSPORTS and ":" not in name:
            raise RegistryError(f"unknown transport {name!r} in spec {spec!r}")
    return names


class TransportRegistry:
    """The set of live communication modules of one runtime instance."""

    def __init__(self, services: TransportServices,
                 costs: _t.Mapping[str, TransportCosts] | None = None):
        self.services = services
        self._costs = dict(DEFAULT_COSTS)
        self._costs.setdefault("stcp", SECURE_TCP_COSTS)
        if costs:
            self._costs.update(costs)
        self._transports: dict[str, Transport] = {}

    # -- configuration ------------------------------------------------------

    def enable(self, name: str,
               costs: TransportCosts | None = None) -> Transport:
        """Instantiate and register a built-in module (idempotent)."""
        if name in self._transports:
            return self._transports[name]
        cls = BUILTIN_TRANSPORTS.get(name)
        if cls is None:
            if ":" in name:
                return self.load(name)
            raise RegistryError(f"unknown transport {name!r}")
        effective = costs or self._costs.get(name)
        if effective is None:
            raise RegistryError(f"no cost model for transport {name!r}")
        transport = cls(self.services, effective)
        self._transports[name] = transport
        return transport

    def enable_all(self, names: _t.Iterable[str]) -> list[Transport]:
        return [self.enable(name) for name in names]

    def load(self, spec: str,
             costs: TransportCosts | None = None) -> Transport:
        """Dynamically load a transport from ``"pkg.module:ClassName"``.

        This is the paper's "if a required module has not been compiled
        into the Nexus library, it can be loaded dynamically".
        """
        try:
            module_name, _, class_name = spec.partition(":")
            if not class_name:
                raise ValueError("missing ':ClassName'")
            module = importlib.import_module(module_name)
            cls = getattr(module, class_name)
        except (ValueError, ImportError, AttributeError) as exc:
            raise RegistryError(f"cannot load transport {spec!r}: {exc}") from exc
        if not (isinstance(cls, type) and issubclass(cls, Transport)):
            raise RegistryError(f"{spec!r} is not a Transport subclass")
        effective = costs or self._costs.get(cls.name)
        if effective is None:
            raise RegistryError(f"no cost model for transport {cls.name!r}")
        transport = cls(self.services, effective)
        self._transports[cls.name] = transport
        return transport

    def register(self, transport: Transport) -> Transport:
        """Register a pre-built transport instance (protocol stacks,
        custom experimental modules).  The instance's ``name`` becomes
        its method name; re-registering a name is an error."""
        if transport.name in self._transports:
            raise RegistryError(
                f"transport {transport.name!r} is already registered")
        self._transports[transport.name] = transport
        return transport

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Transport:
        transport = self._transports.get(name)
        if transport is None:
            raise RegistryError(f"transport {name!r} is not enabled")
        return transport

    def __contains__(self, name: str) -> bool:
        return name in self._transports

    def __len__(self) -> int:
        return len(self._transports)

    def names(self) -> list[str]:
        """Enabled transport names, fastest first (by ``speed_rank``)."""
        return sorted(self._transports,
                      key=lambda n: self._transports[n].speed_rank)

    def transports(self) -> list[Transport]:
        """Enabled transports, fastest first."""
        return [self._transports[n] for n in self.names()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TransportRegistry {self.names()}>"
