"""Integration: a full I-WAY session on one shared runtime.

The I-WAY ran ~60 heterogeneous applications over shared infrastructure.
This test runs three of ours back-to-back on one testbed instance — the
instrument stream (with an ATM outage and failover), the collaborative
whiteboard, and the satellite pipeline — verifying that runtime state
(transport registries, multicast groups, network epochs, degraded links)
composes across applications instead of leaking between them.
"""

import pytest

from repro.apps.collab import run_collab
from repro.apps.satellite import run_satellite
from repro.apps.stream import run_stream
from repro.testbeds import make_iway
from repro.util.report import runtime_report


@pytest.fixture(scope="module")
def day():
    bed = make_iway(sp2_nodes=4)
    results = {}

    # Morning: instrument streaming; the ATM circuit fails mid-session.
    results["stream"] = run_stream(frames=12, outage_at_frame=5,
                                   testbed=bed)
    # The circuit is repaired before the afternoon sessions.
    bed.nexus.network.degrade(bed.sp2, bed.cave,
                              latency_factor=1.0 / 60.0,
                              bandwidth_factor=20.0, transport="aal5")

    # Afternoon: collaborative whiteboard over the same testbed.
    results["collab"] = run_collab(participants=4, updates=12, testbed=bed)

    # Evening: satellite pipeline (its own contexts, same hosts).
    results["satellite"] = run_satellite(frames=2, testbed=bed)
    return bed, results


class TestIwayDay:
    def test_stream_failed_over_and_delivered(self, day):
        _bed, results = day
        stream = results["stream"]
        assert stream.frames_received == 12
        assert stream.switches and stream.switches[0][1] == "tcp"

    def test_collab_unaffected_by_earlier_outage(self, day):
        _bed, results = day
        collab = results["collab"]
        assert collab.delivery_ratio == 1.0
        assert collab.group_sends == 12

    def test_satellite_uses_repaired_atm(self, day):
        _bed, results = day
        satellite = results["satellite"]
        # After repair, the display RPC selects AAL-5 again.
        assert set(satellite.display_methods) == {"aal5"}
        assert len(satellite.latencies) == 2

    def test_virtual_clock_is_cumulative(self, day):
        bed, _results = day
        # All three sessions ran on one clock: it must have advanced
        # through all of them.
        assert bed.nexus.now > 1.0

    def test_network_epoch_reflects_outage_and_repair(self, day):
        bed, _results = day
        assert bed.nexus.network.epoch >= 2  # degrade + repair

    def test_runtime_report_covers_everything(self, day):
        bed, _results = day
        report = runtime_report(bed.nexus)
        for needle in ("instrument-feed", "sp2-ingest", "member0",
                       "display", "aal5", "tcp", "mcast"):
            assert needle in report, f"{needle!r} missing from report"

    def test_transport_traffic_accumulated(self, day):
        bed, _results = day
        transports = bed.nexus.transports
        assert transports.get("aal5").messages_sent > 0
        assert transports.get("tcp").messages_sent > 0
        assert transports.get("mcast").messages_sent > 0
