"""Tests for the climate model components: decomposition, halo exchange,
and model physics (run both serially and distributed)."""

import numpy as np
import pytest

from repro.apps.climate.atmosphere import Atmosphere
from repro.apps.climate.config import TEST_CONFIG, ClimateConfig
from repro.apps.climate.coupling import atmo_children, ocean_parent
from repro.apps.climate.grid import Slab, gather_global, halo_exchange
from repro.apps.climate.ocean import Ocean
from repro.mpi import MPIWorld
from repro.testbeds import make_sp2


class TestSlab:
    def test_decomposition_covers_grid(self):
        field = np.arange(32.0).reshape(8, 4)
        slabs = [Slab.from_global(field, rank, 4) for rank in range(4)]
        reassembled = np.vstack([s.interior for s in slabs])
        assert np.array_equal(reassembled, field)

    def test_neighbours(self):
        slabs = [Slab.zeros(r, 4, 4, 8) for r in range(4)]
        assert slabs[0].south_rank is None
        assert slabs[0].north_rank == 1
        assert slabs[3].north_rank is None
        assert slabs[2].south_rank == 1

    def test_boundary_ghosts_zero_gradient(self):
        slab = Slab.from_global(np.arange(8.0).reshape(2, 4), 0, 1)
        slab.fill_boundary_ghosts()
        assert np.array_equal(slab.data[0], slab.data[1])
        assert np.array_equal(slab.data[-1], slab.data[-2])


class TestHaloExchange:
    def test_ghosts_match_neighbour_interiors(self):
        bed = make_sp2(nodes_a=4, nodes_b=0)
        contexts = [bed.nexus.context(h) for h in bed.hosts_a]
        world = MPIWorld(bed.nexus, contexts)
        field = np.arange(64.0).reshape(8, 8)
        slabs = {}

        def body(proc):
            slab = Slab.from_global(field, proc.rank, 4)
            slabs[proc.rank] = slab
            yield from halo_exchange(proc, world.comm_world, slab)

        handles = world.run_spmd(body)
        bed.nexus.run(until=bed.nexus.sim.all_of(handles))
        for rank in range(4):
            slab = slabs[rank]
            if rank > 0:
                assert np.array_equal(slab.data[0],
                                      slabs[rank - 1].interior[-1])
            if rank < 3:
                assert np.array_equal(slab.data[-1],
                                      slabs[rank + 1].interior[0])

    def test_gather_global_reassembles(self):
        bed = make_sp2(nodes_a=2, nodes_b=0)
        contexts = [bed.nexus.context(h) for h in bed.hosts_a]
        world = MPIWorld(bed.nexus, contexts)
        field = np.arange(24.0).reshape(6, 4)
        result = {}

        def body(proc):
            slab = Slab.from_global(field, proc.rank, 2)
            out = yield from gather_global(proc, world.comm_world, slab)
            if out is not None:
                result["field"] = out

        handles = world.run_spmd(body)
        bed.nexus.run(until=bed.nexus.sim.all_of(handles))
        assert np.array_equal(result["field"], field)


class TestPhysics:
    def test_atmosphere_conserves_mean_height_serial(self):
        model = Atmosphere(0, 1, 16, 8, seed=0)
        before = model.h.interior.mean()
        for _ in range(10):
            model.h.fill_boundary_ghosts()
            model.u.fill_boundary_ghosts()
            model.v.fill_boundary_ghosts()
            model.step_interior()
        after = model.h.interior.mean()
        # Diffusion + advection with reflecting poles: mean height drifts
        # only through the advective term; it must stay bounded and close.
        assert after == pytest.approx(before, rel=0.05)
        assert np.isfinite(model.h.interior).all()

    def test_atmosphere_fields_stay_bounded(self):
        model = Atmosphere(0, 1, 16, 8, seed=1)
        initial_range = np.ptp(model.h.interior)
        for _ in range(50):
            for slab in model.slabs:
                slab.fill_boundary_ghosts()
            model.step_interior()
        assert np.ptp(model.h.interior) <= initial_range * 1.5
        assert np.abs(model.u.interior).max() < 100

    def test_ocean_relaxes_toward_flux(self):
        model = Ocean(0, 1, 16, 8, seed=0)
        model.apply_fluxes(np.full((8, 16), 5.0))
        before = model.sst.interior.mean()
        for _ in range(20):
            model.sst.fill_boundary_ghosts()
            model.step_interior()
        assert model.sst.interior.mean() > before  # warming under +flux

    def test_deterministic_physics(self):
        a = Atmosphere(0, 1, 16, 8, seed=3)
        b = Atmosphere(0, 1, 16, 8, seed=3)
        for model in (a, b):
            for _ in range(5):
                for slab in model.slabs:
                    slab.fill_boundary_ghosts()
                model.step_interior()
        assert a.checksum() == b.checksum()

    def test_distributed_matches_serial(self):
        """4-rank distributed atmosphere == single-rank run, bitwise."""
        serial = Atmosphere(0, 1, 16, 8, seed=0)
        for _ in range(3):
            for slab in serial.slabs:
                slab.fill_boundary_ghosts()
            serial.step_interior()

        bed = make_sp2(nodes_a=4, nodes_b=0)
        contexts = [bed.nexus.context(h) for h in bed.hosts_a]
        world = MPIWorld(bed.nexus, contexts)
        gathered = {}

        def body(proc):
            model = Atmosphere(proc.rank, 4, 16, 8, seed=0)
            for _ in range(3):
                for slab in model.slabs:
                    yield from halo_exchange(proc, world.comm_world, slab)
                model.step_interior()
            out = yield from gather_global(proc, world.comm_world, model.h)
            if out is not None:
                gathered["h"] = out

        handles = world.run_spmd(body)
        bed.nexus.run(until=bed.nexus.sim.all_of(handles))
        assert np.allclose(gathered["h"], serial.h.interior, atol=1e-12)


class TestCouplingMap:
    def test_children_partition_atmo_ranks(self):
        children = [atmo_children(o, 16, 8) for o in range(8)]
        flattened = [rank for group in children for rank in group]
        assert sorted(flattened) == list(range(16))

    def test_parent_inverse_of_children(self):
        for ocean_rank in range(8):
            for atmo_rank in atmo_children(ocean_rank, 16, 8):
                assert ocean_parent(atmo_rank, 16, 8) == ocean_rank


class TestConfig:
    def test_paper_defaults(self):
        cfg = ClimateConfig()
        assert cfg.atmo_ranks == 16
        assert cfg.ocean_ranks == 8
        assert cfg.couple_every == 2
        assert cfg.total_ranks == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            ClimateConfig(steps=3, couple_every=2)
        with pytest.raises(ValueError):
            ClimateConfig(atmo_ranks=6, ocean_ranks=4)
        with pytest.raises(ValueError):
            ClimateConfig(atmo_ny=30, atmo_ranks=16)

    def test_test_config_small(self):
        assert TEST_CONFIG.total_ranks == 6
        assert TEST_CONFIG.couplings == 1
