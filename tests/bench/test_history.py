"""Bench history ledger and variance-aware wall gating."""

import json
import os
import subprocess
import sys

from repro.bench.history import (
    MIN_RUNS,
    append_history,
    load_history,
    wall_bands,
)
from repro.bench.record import (
    DIR_HIGHER,
    DIR_LOWER,
    KIND_SIM,
    KIND_WALL,
    STATUS_OK,
    STATUS_REGRESSED,
    compare_records,
)


def make_document(wall_s, events_per_s=None, *, artefact="analysis"):
    metrics = {"wall_median_s": {"value": wall_s, "unit": "s",
                                 "kind": KIND_WALL,
                                 "direction": DIR_LOWER}}
    if events_per_s is not None:
        metrics["events_per_s"] = {"value": events_per_s, "unit": "1/s",
                                   "kind": KIND_WALL,
                                   "direction": DIR_HIGHER}
    return {"schema": "repro.bench.record", "label": "wall-quick",
            "environment": {"mode": "quick"},
            "artefacts": {artefact: {"metrics": metrics}}}


class TestLedger:
    def test_append_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for value in (1.0, 1.1, 0.9):
            append_history(path, make_document(value))
        history = load_history(path)
        assert [doc["artefacts"]["analysis"]["metrics"]["wall_median_s"]
                ["value"] for doc in history] == [1.0, 1.1, 0.9]

    def test_truncated_tail_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, make_document(1.0))
        with open(path, "a") as handle:
            handle.write(json.dumps(make_document(2.0))[:40])
        assert len(load_history(path)) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []


#: Appended by each writer process in the concurrency test.
_WRITER_SCRIPT = """\
import sys
from repro.bench.history import append_history

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
for index in range(count):
    append_history(path, {"artefacts": {}, "tag": tag, "index": index})
"""


class TestConcurrentAppend:
    def test_parallel_writers_never_interleave_lines(self, tmp_path):
        """Fleet tasks appending to one ledger must produce whole lines.

        Four real processes race 40 appends each; every resulting line
        must parse on its own and every (tag, index) pair must survive —
        torn or interleaved writes would break both.
        """
        path = str(tmp_path / "history.jsonl")
        writers, per_writer = 4, 40
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        procs = [subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT,
             path, f"w{index}", str(per_writer)], env=env)
            for index in range(writers)]
        for proc in procs:
            assert proc.wait(timeout=60) == 0

        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == writers * per_writer
        seen = {(doc["tag"], doc["index"])
                for doc in map(json.loads, lines)}
        assert len(seen) == writers * per_writer


class TestBands:
    def test_bands_need_min_runs(self):
        history = [make_document(1.0) for _ in range(MIN_RUNS - 1)]
        assert wall_bands(history) == {}
        history.append(make_document(1.0))
        assert ("analysis", "wall_median_s") in wall_bands(history)

    def test_band_tracks_spread(self):
        history = [make_document(v) for v in (1.0, 1.1, 0.9, 1.05, 0.95)]
        lo, hi = wall_bands(history, k=3.0)[("analysis", "wall_median_s")]
        assert lo < 0.9 and hi > 1.1
        assert hi < 2.0, "band should stay in the data's neighbourhood"

    def test_stable_metric_keeps_relative_floor(self):
        history = [make_document(2.0) for _ in range(8)]
        lo, hi = wall_bands(history, k=1.0)[("analysis", "wall_median_s")]
        # IQR is zero; the floor keeps the band non-degenerate.
        assert lo < 2.0 < hi
        assert hi - lo >= 0.1


class TestBandedCompare:
    def run(self, history_values, current, **kw):
        history = [make_document(v) for v in history_values]
        bands = wall_bands(history, **kw)
        baseline = make_document(history_values[0])
        return compare_records(baseline, make_document(current),
                               wall_tolerance=0.5, wall_bands=bands)

    def test_inside_band_passes(self):
        comparison = self.run([1.0, 1.1, 0.9, 1.05, 0.95], 1.08)
        assert comparison.ok
        (diff,) = [d for d in comparison.diffs
                   if d.name == "wall_median_s"]
        assert diff.status == STATUS_OK

    def test_outside_band_regresses(self):
        comparison = self.run([1.0, 1.1, 0.9, 1.05, 0.95], 3.0)
        assert not comparison.ok
        (diff,) = [d for d in comparison.diffs
                   if d.name == "wall_median_s"]
        assert diff.status == STATUS_REGRESSED

    def test_band_overrides_flat_tolerance(self):
        # 1.35 is within the +50% flat tolerance of the 1.0 baseline but
        # outside the tight band of a very stable history.
        comparison = self.run([1.0] * 8, 1.35, k=1.0)
        assert not comparison.ok

    def test_higher_is_better_band_direction(self):
        history = [make_document(1.0, events_per_s=1000.0)
                   for _ in range(6)]
        bands = wall_bands(history, k=1.0)
        baseline = make_document(1.0, events_per_s=1000.0)
        slow = compare_records(baseline,
                               make_document(1.0, events_per_s=500.0),
                               wall_bands=bands)
        (diff,) = [d for d in slow.diffs if d.name == "events_per_s"]
        assert diff.status == STATUS_REGRESSED

    def test_unbanded_wall_metric_keeps_flat_gate(self):
        baseline = make_document(1.0)
        comparison = compare_records(baseline, make_document(1.2),
                                     wall_tolerance=0.5, wall_bands={})
        assert comparison.ok

    def test_sim_metrics_unaffected_by_bands(self):
        baseline = make_document(1.0)
        baseline["artefacts"]["analysis"]["metrics"]["count"] = {
            "value": 10.0, "unit": "", "kind": KIND_SIM,
            "direction": DIR_LOWER}
        current = make_document(1.0)
        current["artefacts"]["analysis"]["metrics"]["count"] = {
            "value": 20.0, "unit": "", "kind": KIND_SIM,
            "direction": DIR_LOWER}
        comparison = compare_records(
            baseline, current,
            wall_bands={("analysis", "count"): (0.0, 100.0)})
        assert not comparison.ok, "bands must never loosen sim gating"
