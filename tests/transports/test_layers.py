"""Tests for the protocol composition framework."""

import pytest

from repro.core.buffers import Buffer
from repro.core.selection import RequireMethod
from repro.testbeds import make_sp2
from repro.transports.base import WireMessage
from repro.transports.errors import RegistryError, TransportError
from repro.transports.layers import (
    ChecksumLayer,
    CompressionLayer,
    FragmentationLayer,
    make_layered,
)


def message(nbytes=1000, src=1, dst=2):
    return WireMessage(handler="h", endpoint_id=1, src_context=src,
                       dst_context=dst, payload="payload", nbytes=nbytes)


class TestCompressionLayer:
    def test_shrinks_wire_size(self):
        layer = CompressionLayer(ratio=0.5)
        out, cpu = layer.transform_send(message(1000))
        assert out[0].nbytes == 8 + 500
        assert cpu > 0
        assert layer.bytes_saved == 1000 - 508

    def test_deliver_restores_size_and_charges(self):
        layer = CompressionLayer(ratio=0.5)
        (msg,), _cpu = layer.transform_send(message(1000))
        (restored,) = layer.transform_deliver(msg, None)
        assert restored.nbytes == 1000
        assert restored.headers["extra_recv_cpu"] > 0

    def test_incompressible_stored_raw(self):
        layer = CompressionLayer(ratio=0.99)
        (msg,), _cpu = layer.transform_send(message(20))
        assert msg.nbytes == 20  # raw: ratio*20+8 >= 20
        (restored,) = layer.transform_deliver(msg, None)
        assert restored.nbytes == 20

    def test_bad_ratio_rejected(self):
        with pytest.raises(TransportError):
            CompressionLayer(ratio=0.0)
        with pytest.raises(TransportError):
            CompressionLayer(ratio=1.5)


class TestChecksumLayer:
    def test_trailer_roundtrip(self):
        layer = ChecksumLayer()
        (msg,), cpu = layer.transform_send(message(100))
        assert msg.nbytes == 108 and cpu > 0
        (verified,) = layer.transform_deliver(msg, None)
        assert verified.nbytes == 100
        assert layer.verified == 1

    def test_missing_trailer_detected(self):
        layer = ChecksumLayer()
        with pytest.raises(TransportError, match="missing"):
            layer.transform_deliver(message(100), None)


class TestFragmentationLayer:
    def test_small_messages_untouched(self):
        layer = FragmentationLayer(mtu=1024)
        out, cpu = layer.transform_send(message(100))
        assert len(out) == 1 and cpu == 0.0

    def test_split_and_reassemble(self):
        layer = FragmentationLayer(mtu=512)
        fragments, _cpu = layer.transform_send(message(2000))
        assert len(fragments) == 4  # 500 payload bytes per fragment
        assert sum(f.nbytes for f in fragments) == 2000 + 4 * 12
        # payload object travels exactly once
        assert [f.payload for f in fragments].count("payload") == 1

        delivered = []
        for fragment in fragments:
            delivered.extend(layer.transform_deliver(fragment, None))
        assert len(delivered) == 1
        assert delivered[0].nbytes == 2000
        assert delivered[0].payload == "payload"
        assert layer.partial_messages == 0

    def test_out_of_order_reassembly(self):
        layer = FragmentationLayer(mtu=512)
        fragments, _cpu = layer.transform_send(message(2000))
        delivered = []
        for fragment in reversed(fragments):
            delivered.extend(layer.transform_deliver(fragment, None))
        assert len(delivered) == 1 and delivered[0].nbytes == 2000

    def test_interleaved_streams_do_not_mix(self):
        layer = FragmentationLayer(mtu=512)
        frags_a, _ = layer.transform_send(message(1500, src=1))
        frags_b, _ = layer.transform_send(message(1500, src=2))
        delivered = []
        for pair in zip(frags_a, frags_b):
            for fragment in pair:
                delivered.extend(layer.transform_deliver(fragment, None))
        assert len(delivered) == 2
        assert {m.src_context for m in delivered} == {1, 2}

    def test_tiny_mtu_rejected(self):
        with pytest.raises(TransportError):
            FragmentationLayer(mtu=4)


class TestLayeredTransportEndToEnd:
    @pytest.fixture
    def bed(self):
        return make_sp2(nodes_a=1, nodes_b=1)

    def _run(self, bed, layers, nbytes, name):
        nexus = bed.nexus
        make_layered(nexus.transports, "tcp", layers, name=name)
        methods = ("local", "tcp", name)
        a = nexus.context(bed.hosts_a[0], methods=methods)
        b = nexus.context(bed.hosts_b[0], methods=methods)
        log = []
        b.register_handler("h", lambda c, e, buf: log.append(
            (buf.get_padding(), nexus.now)))
        sp = a.startpoint_to(b.new_endpoint(), policy=RequireMethod(name))

        def sender():
            yield from sp.rsr("h", Buffer().put_padding(nbytes))

        def receiver():
            yield from b.wait(lambda: bool(log))

        done = nexus.spawn(receiver())
        nexus.spawn(sender())
        nexus.run(until=done)
        return log[0], nexus

    def test_compressed_tcp_delivers_payload_intact(self, bed):
        (size, _at), nexus = self._run(
            bed, [CompressionLayer(ratio=0.3)], 200_000, "lzw+tcp")
        assert size == 200_000  # application sees the original bytes
        transport = nexus.transports.get("lzw+tcp")
        # wire carried the compressed size
        assert transport.carrier.bytes_sent < 0.5 * 200_000

    def test_compression_wins_on_slow_wire(self):
        """The paper's manual-selection example, measured: compressing a
        large transfer over 8 MB/s TCP beats plain TCP."""
        bed_plain = make_sp2(nodes_a=1, nodes_b=1)
        nexus = bed_plain.nexus
        a = nexus.context(bed_plain.hosts_a[0])
        b = nexus.context(bed_plain.hosts_b[0])
        log = []
        b.register_handler("h", lambda c, e, buf: log.append(nexus.now))
        sp = a.startpoint_to(b.new_endpoint())

        def sender():
            yield from sp.rsr("h", Buffer().put_padding(2_000_000))

        def receiver():
            yield from b.wait(lambda: bool(log))

        done = nexus.spawn(receiver())
        nexus.spawn(sender())
        nexus.run(until=done)
        plain_time = log[0]

        bed_lzw = make_sp2(nodes_a=1, nodes_b=1)
        (_size, lzw_time), _ = self._run(
            bed_lzw, [CompressionLayer(ratio=0.4)], 2_000_000, "lzw+tcp")
        # Wire serialisation and kernel send copies shrink with the data;
        # the receive-side copy is charged on the *decompressed* bytes, so
        # the win is real but bounded (~20% at this ratio).
        assert lzw_time < plain_time * 0.85

    def test_full_stack_checksum_fragmentation_compression(self, bed):
        (size, _at), nexus = self._run(
            bed,
            [CompressionLayer(ratio=0.5), ChecksumLayer(),
             FragmentationLayer(mtu=16 * 1024)],
            300_000, "lzw+cksum+frag+tcp")
        assert size == 300_000
        stack = nexus.transports.get("lzw+cksum+frag+tcp")
        frag = stack.layers[2]
        assert frag.fragments_sent > 1
        assert frag.partial_messages == 0

    def test_composite_never_auto_selected(self, bed):
        nexus = bed.nexus
        make_layered(nexus.transports, "tcp", [ChecksumLayer()],
                     name="cksum+tcp")
        methods = ("local", "tcp", "cksum+tcp")
        a = nexus.context(bed.hosts_a[0], methods=methods)
        b = nexus.context(bed.hosts_b[0], methods=methods)
        sp = a.startpoint_to(b.new_endpoint())
        assert sp.ensure_connected(sp.links[0]).method == "tcp"

    def test_duplicate_registration_rejected(self, bed):
        make_layered(bed.nexus.transports, "tcp", [ChecksumLayer()],
                     name="dup")
        with pytest.raises(RegistryError):
            make_layered(bed.nexus.transports, "tcp", [ChecksumLayer()],
                         name="dup")
