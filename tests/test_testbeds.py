"""Tests for the canned testbeds."""

import pytest

from repro.testbeds import SP2_SWITCH_TCP, make_iway, make_sp2
from repro.util.units import mbps, milliseconds


class TestSp2:
    def test_partitions(self):
        bed = make_sp2(nodes_a=3, nodes_b=2)
        assert len(bed.hosts_a) == 3 and len(bed.hosts_b) == 2
        assert len(bed.partition_a) == 3
        assert bed.partition_a.session != bed.partition_b.session
        assert bed.hosts == bed.hosts_a + bed.hosts_b

    def test_switch_tcp_profile_matches_paper(self):
        assert SP2_SWITCH_TCP.bandwidth == mbps(8.0)
        assert SP2_SWITCH_TCP.latency == milliseconds(2.0)
        bed = make_sp2()
        assert bed.machine.switch_profile("tcp") is SP2_SWITCH_TCP

    def test_default_transports(self):
        bed = make_sp2()
        assert bed.nexus.transports.names() == ["local", "mpl", "tcp"]

    def test_custom_transports(self):
        bed = make_sp2(transports=("local", "mpl", "tcp", "udp"))
        assert "udp" in bed.nexus.transports.names()

    def test_context_grid(self):
        bed = make_sp2(nodes_a=2, nodes_b=1)
        ctxs_a, ctxs_b = bed.context_grid()
        assert len(ctxs_a) == 2 and len(ctxs_b) == 1
        assert ctxs_a[0].host is bed.hosts_a[0]

    def test_empty_partition_b(self):
        bed = make_sp2(nodes_a=2, nodes_b=0)
        assert bed.hosts_b == []


class TestIway:
    def test_machines_and_links(self):
        bed = make_iway(sp2_nodes=3)
        assert len(bed.sp2_hosts) == 3
        net = bed.nexus.network
        assert net.ip_connected(bed.sp2_hosts[0], bed.instrument_host)
        # AAL-5 reaches the CAVE but not the instrument site.
        assert net.wan_route(bed.sp2, bed.cave, "aal5")
        assert net.wan_route(bed.sp2, bed.instrument, "aal5") is None

    def test_atm_attributes(self):
        bed = make_iway()
        assert bed.cave_host.attributes.get("atm")
        assert all(h.attributes.get("atm") for h in bed.sp2_hosts)
        assert not bed.instrument_host.attributes.get("atm")

    def test_transport_set(self):
        bed = make_iway()
        names = bed.nexus.transports.names()
        for required in ("aal5", "tcp", "udp", "mcast"):
            assert required in names
