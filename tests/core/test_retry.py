"""Tests for RetryPolicy: validation, backoff arithmetic, per-attempt
timeouts, and deterministic seeded jitter."""

import numpy as np
import pytest

from repro import Buffer, HealthConfig, RetryPolicy, enquiry, make_sp2
from repro.core.errors import NexusError, SelectionError
from repro.core.retry import NO_RETRY

MB = 1024 * 1024


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(timeout=0.0),
        dict(timeout=-1.0),
        dict(base_delay=-0.1),
        dict(base_delay=0.5, max_delay=0.1),
        dict(backoff=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(NexusError):
            RetryPolicy(**kwargs)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.timeout is None


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.01,
                             backoff=2.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.001)
        assert policy.delay(1) == pytest.approx(0.002)
        assert policy.delay(3) == pytest.approx(0.008)
        assert policy.delay(10) == pytest.approx(0.01), "capped at max_delay"

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.001, jitter=0.5)
        delays = [policy.delay(0, np.random.default_rng(42))
                  for _ in range(8)]
        assert delays == [delays[0]] * 8, "same seed, same jitter"
        assert 0.001 <= delays[0] <= 0.0015
        rng = np.random.default_rng(42)
        assert len({policy.delay(0, rng) for _ in range(8)}) > 1

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.001, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.001)


def cross_partition_send(bed, payload):
    nexus = bed.nexus
    a = nexus.context(bed.hosts_a[0])
    b = nexus.context(bed.hosts_b[0])
    log = []
    b.register_handler("blob",
                       lambda c, e, buf: log.append(buf.get_padding()))
    sp = a.startpoint_to(b.new_endpoint())

    def sender():
        yield from sp.rsr("blob", Buffer().put_padding(payload))

    nexus.run_until(sender(), b.wait(lambda: bool(log)))
    return log


class TestTimeout:
    def test_generous_timeout_changes_nothing(self):
        baseline = make_sp2(nodes_a=1, nodes_b=1)
        timed = make_sp2(nodes_a=1, nodes_b=1,
                         retry_policy=RetryPolicy(timeout=60.0))
        assert cross_partition_send(baseline, MB) == \
            cross_partition_send(timed, MB)
        assert timed.sim.now == pytest.approx(baseline.sim.now)
        assert enquiry.health_report(timed.nexus).retries == 0

    def test_attempts_time_out_then_methods_exhaust(self):
        # A 2 MB transfer over the 8 Mb/s switch takes ~2 s; a 1 ms
        # per-attempt timeout abandons every attempt, downs TCP, and —
        # with no other applicable method — the send fails loudly.
        bed = make_sp2(
            nodes_a=1, nodes_b=1,
            retry_policy=RetryPolicy(max_attempts=2, timeout=1e-3,
                                     base_delay=1e-4, max_delay=1e-3),
            health=HealthConfig(failure_threshold=2, cooloff=1.0))
        with pytest.raises(SelectionError,
                           match="no healthy communication methods left"):
            cross_partition_send(bed, 2 * MB)
        health = enquiry.health_report(bed.nexus)
        assert health.retries == 1
        assert [(m, t) for _, _, _, m, t in health.events] == [
            ("tcp", "down")]

    def test_abandoned_attempt_leaks_no_channel_units(self):
        # After the timed-out send is interrupted, the channel must be
        # fully released or a later send would block forever.
        bed = make_sp2(
            nodes_a=1, nodes_b=1,
            retry_policy=RetryPolicy(max_attempts=1, timeout=0.1),
            health=HealthConfig(failure_threshold=10, cooloff=1.0))
        with pytest.raises(SelectionError):
            cross_partition_send(bed, 2 * MB)
        assert cross_partition_send(bed, 1024) == [1024]


class TestDeterminism:
    def test_identical_seeds_identical_retry_arcs(self):
        def run():
            bed = make_sp2(
                nodes_a=1, nodes_b=1, seed=3,
                retry_policy=RetryPolicy(max_attempts=3, timeout=1e-3,
                                         base_delay=1e-4, max_delay=1e-2))
            try:
                cross_partition_send(bed, 2 * MB)
            except SelectionError:
                pass
            health = enquiry.health_report(bed.nexus)
            # Context ids are allocated globally, so strip them before
            # comparing the two runs' transition logs.
            return (bed.sim.now, health.retries,
                    [(t, m, tr) for t, _c, _r, m, tr in health.events])

        assert run() == run()
