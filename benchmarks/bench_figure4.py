"""Regenerate Figure 4: ping-pong one-way time vs message size.

Series: raw MPL, Nexus single-method (MPL), Nexus multimethod (MPL+TCP).
Shape criteria: multimethod >= single >= raw everywhere; tens-to-hundreds
of microseconds of TCP-polling overhead at 0 bytes; single-method
converges to raw at large sizes while multimethod stays above.
"""

from repro.bench import check_figure4_shape, figure4, record_figure4


def test_figure4(run_once, bench_record):
    fig = run_once(figure4, 80)
    print()
    print(fig.render())
    print()
    print(fig.render_charts())
    record_figure4(bench_record, fig)
    check_figure4_shape(fig)
