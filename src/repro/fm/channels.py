"""Typed channels: inports, outports, merging, port mobility."""

from __future__ import annotations

import collections
import itertools
import typing as _t

from ..core.buffers import Buffer
from ..core.context import Context
from ..core.endpoint import Endpoint
from ..core.startpoint import Startpoint, WireStartpoint
from ..mpi.datatypes import Payload, pack_payload, unpack_payload

CHANNEL_HANDLER = "__fm_channel__"

#: control opcodes
_OP_DATA = 0
_OP_OPEN = 1
_OP_CLOSE = 2
_OP_PORT = 3


class FmError(Exception):
    """Illegal channel operation."""


class ChannelClosed(FmError):
    """Every writer has closed and the channel is drained (end of
    channel, FM's ``EOC``)."""


class InPort:
    """The single receiving end of a channel.

    Owned by the context that created the channel; cannot move (it wraps
    an endpoint, and endpoints do not travel).
    """

    def __init__(self, context: Context):
        self.context = context
        self.endpoint: Endpoint = context.new_endpoint(bound_object=self)
        context.register_handler(CHANNEL_HANDLER, _channel_handler)
        self.queue: collections.deque = collections.deque()
        self.writers_opened = 1   # the channel's original outport
        self.writers_closed = 0
        self.received = 0

    # -- state -------------------------------------------------------------

    @property
    def open_writers(self) -> int:
        return self.writers_opened - self.writers_closed

    @property
    def drained(self) -> bool:
        """No queued values and no writer left to produce more."""
        return not self.queue and self.open_writers <= 0

    def __len__(self) -> int:
        return len(self.queue)

    # -- receiving ------------------------------------------------------------

    def try_receive(self) -> tuple[bool, object]:
        """Nonblocking: ``(True, value)`` or ``(False, None)``.

        Raises :class:`ChannelClosed` once the channel is drained.
        """
        if self.queue:
            self.received += 1
            return True, self.queue.popleft()
        if self.open_writers <= 0:
            raise ChannelClosed("end of channel")
        return False, None

    def receive(self):
        """Generator: the next value in merge order (blocks via the poll
        loop); raises :class:`ChannelClosed` at end of channel."""
        while True:
            if self.queue:
                self.received += 1
                return self.queue.popleft()
            if self.open_writers <= 0:
                raise ChannelClosed("end of channel")
            yield from self.context.wait(
                lambda: bool(self.queue) or self.open_writers <= 0)

    def receive_all(self):
        """Generator: drain the channel to end-of-channel; returns a list."""
        values = []
        while True:
            try:
                value = yield from self.receive()
            except ChannelClosed:
                return values
            values.append(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<InPort ctx={self.context.id} queued={len(self.queue)} "
                f"writers={self.open_writers}>")


class OutPort:
    """A sending end of a channel (a mobile value).

    ``fork()`` creates another writer (announcing itself to the reader);
    ``to_wire()``/``from_wire()`` move a port between contexts — or pack
    it into any channel message with :meth:`send`, ports included.
    """

    def __init__(self, startpoint: Startpoint, *, _announced: bool = True):
        self.startpoint = startpoint
        self.closed = False
        self.sent = 0

    @property
    def context(self) -> Context:
        return self.startpoint.context

    @property
    def method(self) -> str | None:
        return self.startpoint.current_methods()[0]

    def _require_open(self) -> None:
        if self.closed:
            raise FmError("operation on a closed outport")

    # -- sending ---------------------------------------------------------------

    def send(self, value: "Payload | OutPort"):
        """Generator: append one value to the channel.

        An :class:`OutPort` value travels as a live port (FM port
        mobility); everything else uses the typed payload encoding.
        """
        self._require_open()
        buffer = Buffer()
        if isinstance(value, OutPort):
            # The transferred port keeps writing rights: announce a
            # writer on ITS channel so the recipient may use it.
            buffer.put_int(_OP_PORT)
            buffer.put_startpoint(value.startpoint)
            yield from _send_control(value, _OP_OPEN)
        else:
            buffer.put_int(_OP_DATA)
            pack_payload(buffer, value)
        self.sent += 1
        yield from self.startpoint.rsr(CHANNEL_HANDLER, buffer)

    def close(self):
        """Generator: retire this writer (end-of-channel once all have)."""
        if self.closed:
            return
        self.closed = True
        yield from _send_control(self, _OP_CLOSE)

    def fork(self):
        """Generator: a new independent writer on the same channel."""
        self._require_open()
        copy = OutPort(self.context.import_startpoint(
            self.startpoint.to_wire()))
        yield from _send_control(copy, _OP_OPEN)
        return copy

    # -- mobility ---------------------------------------------------------------

    def to_wire(self) -> WireStartpoint:
        self._require_open()
        return self.startpoint.to_wire()

    @classmethod
    def from_wire(cls, wire: WireStartpoint, context: Context,
                  *, announce: bool = True):
        """Generator: import a port into ``context`` (announcing the new
        writer to the channel's reader unless it replaces the original)."""
        port = cls(context.import_startpoint(wire))
        if announce:
            yield from _send_control(port, _OP_OPEN)
        return port

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"<OutPort ctx={self.context.id} {state} sent={self.sent}>"


def _send_control(port: OutPort, opcode: int):
    buffer = Buffer()
    buffer.put_int(opcode)
    yield from port.startpoint.rsr(CHANNEL_HANDLER, buffer)


def _channel_handler(context: Context, endpoint: Endpoint | None,
                     buffer: Buffer) -> None:
    assert endpoint is not None
    inport = _t.cast(InPort, endpoint.bound_object)
    opcode = buffer.get_int()
    if opcode == _OP_DATA:
        inport.queue.append(unpack_payload(buffer))
    elif opcode == _OP_PORT:
        wire = buffer.get_startpoint(context)
        # Arrives pre-announced (the sender issued the OPEN); wrap without
        # announcing again.
        inport.queue.append(OutPort(wire))
    elif opcode == _OP_OPEN:
        inport.writers_opened += 1
    elif opcode == _OP_CLOSE:
        inport.writers_closed += 1
    else:  # pragma: no cover - wire corruption guard
        raise FmError(f"bad channel opcode {opcode}")


def channel(context: Context) -> tuple[OutPort, InPort]:
    """Create a channel in ``context``; returns ``(outport, inport)``.

    The outport usually travels elsewhere (pack it into another
    channel's message, or ``to_wire``/``from_wire`` it); the inport
    stays.
    """
    inport = InPort(context)
    outport = OutPort(context.startpoint_to(inport.endpoint))
    return outport, inport
