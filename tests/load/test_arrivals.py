"""Arrival processes and size distributions: determinism and shape."""

import math

import pytest

from repro.load.arrivals import (
    Bursty,
    ClosedLoop,
    Diurnal,
    FixedSize,
    LoadSpecError,
    LognormalSize,
    MixedRoundPattern,
    OpenLoop,
    ParetoSize,
    UniformSize,
)
from repro.simnet.random import derived_generator


def _rng(name="test", seed=0):
    return derived_generator(seed, name)


class TestSizeDists:
    def test_fixed(self):
        dist = FixedSize(2048)
        assert dist.sample(_rng()) == 2048
        assert dist.mean() == 2048.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(LoadSpecError):
            FixedSize(-1)

    def test_uniform_in_range_and_deterministic(self):
        dist = UniformSize(100, 200)
        draws = [dist.sample(_rng("u", seed=3)) for _ in range(1)]
        again = [dist.sample(_rng("u", seed=3)) for _ in range(1)]
        assert draws == again
        rng = _rng("u2")
        assert all(100 <= dist.sample(rng) <= 200 for _ in range(200))
        assert dist.mean() == 150.0

    def test_uniform_rejects_inverted_range(self):
        with pytest.raises(LoadSpecError):
            UniformSize(10, 5)

    def test_lognormal_capped_and_positive_skew(self):
        dist = LognormalSize(median=512.0, sigma=1.0, cap=4096)
        rng = _rng("ln")
        draws = [dist.sample(rng) for _ in range(500)]
        assert all(0 <= d <= 4096 for d in draws)
        assert dist.mean() == pytest.approx(512.0 * math.exp(0.5))

    def test_lognormal_rejects_cap_below_median(self):
        with pytest.raises(LoadSpecError):
            LognormalSize(median=512.0, cap=256)

    def test_pareto_bounded_heavy_tail(self):
        dist = ParetoSize(minimum=64, alpha=1.5, cap=1 << 16)
        rng = _rng("p")
        draws = [dist.sample(rng) for _ in range(500)]
        assert all(64 <= d <= (1 << 16) for d in draws)
        assert dist.mean() == pytest.approx(64 * 3.0)

    def test_pareto_divergent_mean_binds_to_cap(self):
        assert ParetoSize(minimum=64, alpha=1.0, cap=4096).mean() == 4096.0


class TestOpenLoop:
    def test_rate_must_be_positive(self):
        with pytest.raises(LoadSpecError):
            OpenLoop(rate=0.0)

    def test_times_deterministic_and_ordered(self):
        arrival = OpenLoop(rate=100.0)
        first = list(arrival.times(_rng("a", seed=5), 0.0, 2.0))
        second = list(arrival.times(_rng("a", seed=5), 0.0, 2.0))
        assert first == second
        assert first == sorted(first)
        assert all(0.0 <= t < 2.0 for t in first)
        # ~200 expected arrivals; allow wide stochastic slack.
        assert 120 < len(first) < 300

    def test_mean_rate_approximates_nominal(self):
        arrival = OpenLoop(rate=500.0)
        count = len(list(arrival.times(_rng("b"), 0.0, 4.0)))
        assert count == pytest.approx(2000, rel=0.15)

    def test_bursty_concentrates_arrivals_in_duty_window(self):
        arrival = OpenLoop(rate=200.0,
                           modulation=Bursty(period=1.0, duty=0.2,
                                             boost=4.0, quiet=0.25))
        times = list(arrival.times(_rng("c"), 0.0, 20.0))
        in_burst = sum(1 for t in times if (t % 1.0) < 0.2)
        # burst window carries 4.0*0.2 = 0.8 of the mass vs 0.25*0.8 = 0.2
        assert in_burst / len(times) > 0.6

    def test_diurnal_trough_thins_arrivals(self):
        arrival = OpenLoop(rate=200.0,
                           modulation=Diurnal(period=2.0, depth=0.9))
        times = list(arrival.times(_rng("d"), 0.0, 20.0))
        # Peak at t % 2 == 0, trough at t % 2 == 1.
        near_peak = sum(1 for t in times if (t % 2.0) < 0.5 or
                        (t % 2.0) > 1.5)
        assert near_peak / len(times) > 0.6

    def test_modulation_factor_bounded_by_peak(self):
        bursty = Bursty(period=1.0, duty=0.3, boost=3.0, quiet=0.1)
        diurnal = Diurnal(period=1.0, depth=0.5)
        for t in [x / 10 for x in range(25)]:
            assert 0.0 <= bursty.factor(t) <= bursty.peak
            assert 0.0 <= diurnal.factor(t) <= diurnal.peak

    def test_bad_modulations_rejected(self):
        with pytest.raises(LoadSpecError):
            Bursty(period=0.0)
        with pytest.raises(LoadSpecError):
            Bursty(period=1.0, duty=1.5)
        with pytest.raises(LoadSpecError):
            Diurnal(period=1.0, depth=2.0)


class TestClosedLoop:
    def test_think_time_jitter_and_exact(self):
        exact = ClosedLoop(think_time=0.5, jitter=False)
        assert exact.think(_rng()) == 0.5
        jittered = ClosedLoop(think_time=0.5)
        rng = _rng("t")
        draws = [jittered.think(rng) for _ in range(500)]
        assert sum(draws) / len(draws) == pytest.approx(0.5, rel=0.2)

    def test_zero_think_is_zero_even_with_jitter(self):
        assert ClosedLoop(think_time=0.0).think(_rng()) == 0.0

    def test_negative_think_rejected(self):
        with pytest.raises(LoadSpecError):
            ClosedLoop(think_time=-1.0)

    def test_closed_flags(self):
        assert ClosedLoop(think_time=0.1).closed
        assert not OpenLoop(rate=1.0).closed


class TestMixedRoundPattern:
    def test_default_schedule(self):
        pattern = MixedRoundPattern()
        ops = list(pattern.rounds(10))
        assert [op.index for op in ops] == list(range(10))
        assert all(op.local_bytes == 2048 for op in ops)
        remote = [op.index for op in ops if op.remote_bytes is not None]
        assert remote == [0, 5]

    def test_bytes_per_round(self):
        pattern = MixedRoundPattern(local_bytes=1000, remote_bytes=5000,
                                    remote_every=5)
        assert pattern.bytes_per_round() == 2000.0

    def test_rejects_bad_spec(self):
        with pytest.raises(LoadSpecError):
            MixedRoundPattern(remote_every=0)
        with pytest.raises(LoadSpecError):
            MixedRoundPattern(local_bytes=-1)
