"""repro.util — shared helpers: units, result records, table formatting."""

from .records import ResultRow, ResultTable, Series
from .units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_rate,
    format_time,
    mbps,
    microseconds,
    milliseconds,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "ResultRow",
    "ResultTable",
    "Series",
    "format_bytes",
    "format_rate",
    "format_time",
    "mbps",
    "microseconds",
    "milliseconds",
]
