"""Futures for asynchronous remote method invocation."""

from __future__ import annotations

import typing as _t

from .errors import RemoteError, RpcError

if _t.TYPE_CHECKING:  # pragma: no cover
    from .service import RpcRuntime


class RpcFuture:
    """The eventual result of an ``acall``.

    ``yield from future.wait()`` blocks (in the Nexus poll loop) until
    the reply arrives, then returns the result or raises
    :class:`RemoteError`.  ``future.done`` is the nonblocking check.
    """

    def __init__(self, runtime: "RpcRuntime", seq: int, method: str):
        self.runtime = runtime
        self.seq = seq
        self.method = method
        self.done = False
        self._value: object = None
        self._error: RemoteError | None = None

    # -- completion (reply-handler side) ------------------------------------

    def resolve(self, value: object) -> None:
        if self.done:
            raise RpcError(f"future for call {self.seq} resolved twice")
        self._value = value
        self.done = True

    def reject(self, error: RemoteError) -> None:
        if self.done:
            raise RpcError(f"future for call {self.seq} resolved twice")
        self._error = error
        self.done = True

    # -- caller side ----------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.done and self._error is not None

    def result(self) -> object:
        """The value (or raise), without waiting; call when ``done``."""
        if not self.done:
            raise RpcError(f"call {self.seq} ({self.method!r}) has not "
                           "completed")
        if self._error is not None:
            raise self._error
        return self._value

    def wait(self):
        """Generator: poll until the reply arrives; return the result."""
        yield from self.runtime.context.wait(lambda: self.done)
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ("failed" if self.failed else
                 "done" if self.done else "pending")
        return f"<RpcFuture {self.method!r} seq={self.seq} {state}>"
