"""Tests for the multicast communication module."""

import pytest

from repro.core.buffers import Buffer
from repro.testbeds import make_sp2
from repro.transports.errors import DeliveryError
from repro.transports.multicast import MulticastTransport

METHODS = ("local", "mpl", "tcp", "mcast")


@pytest.fixture
def group_bed():
    bed = make_sp2(nodes_a=4, nodes_b=0, transports=METHODS)
    nexus = bed.nexus
    contexts = [nexus.context(h, f"m{i}", methods=METHODS)
                for i, h in enumerate(bed.hosts_a)]
    mcast = nexus.transports.get("mcast")
    for ctx in contexts:
        mcast.join("g", ctx)
        ctx.poll_manager.add_method("mcast")
    return bed, contexts, mcast


class TestGroupManagement:
    def test_join_idempotent(self, group_bed):
        _bed, contexts, mcast = group_bed
        mcast.join("g", contexts[0])
        assert list(mcast.members("g")).count(contexts[0].id) == 1

    def test_leave(self, group_bed):
        _bed, contexts, mcast = group_bed
        mcast.leave("g", contexts[2])
        assert contexts[2].id not in mcast.members("g")
        mcast.leave("g", contexts[2])  # idempotent

    def test_group_descriptor(self, group_bed):
        _bed, contexts, mcast = group_bed
        d = mcast.descriptor_for_group(contexts[1], "g")
        assert d.param("group") == "g"
        assert d.method == "mcast"

    def test_default_export_is_none(self, group_bed):
        _bed, contexts, mcast = group_bed
        assert mcast.export_descriptor(contexts[0]) is None


class TestGroupSend:
    def _mcast_startpoint(self, contexts, mcast, group="g"):
        sender = contexts[0]
        sp = sender.new_startpoint()
        for ctx in contexts[1:]:
            endpoint = ctx.new_endpoint()
            table = ctx.export_table().copy()
            table.add(mcast.descriptor_for_group(ctx, group), position=0)
            sp.bind_address(ctx.id, endpoint.id, table)
        sp.set_method("mcast")
        return sp

    def test_one_send_reaches_all_members(self, group_bed):
        bed, contexts, mcast = group_bed
        nexus = bed.nexus
        got = []
        for ctx in contexts:
            ctx.register_handler(
                "u", lambda c, e, buf: got.append((c.name, buf.get_int())))
        sp = self._mcast_startpoint(contexts, mcast)

        def sender():
            yield from sp.rsr("u", Buffer().put_int(7))

        def waiter(ctx):
            yield from ctx.wait(
                lambda: any(name == ctx.name for name, _v in got))

        waits = [nexus.spawn(waiter(ctx)) for ctx in contexts[1:]]
        nexus.spawn(sender())
        nexus.run(until=nexus.sim.all_of(waits))
        assert sorted(name for name, _ in got) == ["m1", "m2", "m3"]
        assert all(value == 7 for _n, value in got)
        # collapsed to ONE wire-level group send
        assert mcast.services.tracer.count("mcast.group_sends") == 1

    def test_mixed_methods_fall_back_to_per_link(self, group_bed):
        """If one link uses a different method, rsr loops per link."""
        bed, contexts, mcast = group_bed
        nexus = bed.nexus
        got = []
        for ctx in contexts:
            ctx.register_handler("u", lambda c, e, buf: got.append(c.name))
        sp = self._mcast_startpoint(contexts, mcast)
        sp.links[0].comm = None
        sp.links[0].table.remove("mcast")  # first link now prefers mpl

        def sender():
            yield from sp.rsr("u", Buffer())

        def waiter(ctx):
            yield from ctx.wait(lambda: ctx.name in got)

        waits = [nexus.spawn(waiter(ctx)) for ctx in contexts[1:]]
        nexus.spawn(sender())
        nexus.run(until=nexus.sim.all_of(waits))
        assert mcast.services.tracer.count("mcast.group_sends") == 0
        assert sorted(got) == ["m1", "m2", "m3"]

    def test_empty_group_rejected(self, group_bed):
        bed, contexts, mcast = group_bed
        nexus = bed.nexus
        message_state: dict = {}
        from repro.transports.base import WireMessage
        msg = WireMessage(handler="u", endpoint_id=0,
                          src_context=contexts[0].id, dst_context=-1,
                          payload=None, nbytes=10)

        def sender():
            yield from mcast.send_group(contexts[0], message_state, "empty",
                                        msg)

        proc = nexus.spawn(sender())
        with pytest.raises(DeliveryError):
            nexus.run(until=proc)
