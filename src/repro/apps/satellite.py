"""Near-real-time satellite image processing (the paper's reference [20]).

"Applications that connect scientific instruments or other data sources
to remote computing capabilities" — Lee, Kesselman & Schwab's CC++
satellite-processing application was one of the paper's three motivating
workload classes.  This app rebuilds it on the I-WAY testbed, exercising
three layers at once:

* the **instrument site** captures image frames and streams the raw
  tiles to the SP2 ingest rank over routed IP (a Nexus RSR);
* the **SP2** processes each frame in data-parallel fashion over
  mini-MPI: the ingest rank scatters row blocks, every rank applies a
  real 3×3 convolution filter (numpy), and the blocks are gathered back;
* the processed thumbnail is delivered to a **display object** exposed
  at the CAVE through a CC++-style global-pointer RPC
  (:mod:`repro.rpc`), crossing an architecture boundary (XDR costs) and
  the ATM link.

The per-frame pipeline latency (capture → display) is the quantity of
interest; the test suite additionally verifies that the distributed
convolution is bit-identical to a serial reference.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

import numpy as np

from ..core.buffers import Buffer
from ..core.context import Context
from ..mpi.datatypes import Padded
from ..mpi.mpi import MPIWorld, MpiProcess
from ..rpc import GlobalPointer, expose
from ..testbeds import IWayTestbed, make_iway

#: 3x3 smoothing kernel applied to every frame.
KERNEL = np.array([[1.0, 2.0, 1.0],
                   [2.0, 4.0, 2.0],
                   [1.0, 2.0, 1.0]]) / 16.0

#: Wire size of one raw frame pixel (16-bit sensor).
BYTES_PER_PIXEL = 2


def convolve_rows(image: np.ndarray) -> np.ndarray:
    """Serial reference filter: 3×3 kernel, edge rows/cols clamped."""
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image)
    for dy in range(3):
        for dx in range(3):
            out += KERNEL[dy, dx] * padded[dy:dy + image.shape[0],
                                           dx:dx + image.shape[1]]
    return out


def make_frame(frame_id: int, ny: int, nx: int) -> np.ndarray:
    """Deterministic synthetic sensor image for frame ``frame_id``."""
    rng = np.random.default_rng(1000 + frame_id)
    yy, xx = np.mgrid[0:ny, 0:nx]
    swirl = np.sin(xx / 5.0 + frame_id) * np.cos(yy / 7.0 - frame_id)
    return 100.0 + 20.0 * swirl + rng.standard_normal((ny, nx))


class Display:
    """The CAVE-side display service (an exposed RPC object)."""

    def __init__(self, nexus):
        self.nexus = nexus
        self.shown: list[tuple[int, float, float]] = []  # id, sum, shown-at

    def show(self, frame_id: int, checksum: float, _thumbnail) -> int:
        self.shown.append((frame_id, checksum, self.nexus.now))
        return frame_id


@dataclasses.dataclass
class SatelliteResult:
    """Outcome of a pipeline run."""

    frames: int
    latencies: list[float]          # capture -> displayed, per frame
    checksums: list[float]          # processed-image checksums, by frame
    display_methods: list[str | None]
    total_time: float

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    @property
    def throughput(self) -> float:
        """Frames per (virtual) second."""
        return self.frames / self.total_time if self.total_time else 0.0


def run_satellite(frames: int = 4, *, ny: int = 32, nx: int = 32,
                  sp2_nodes: int = 4, frame_interval: float = 0.05,
                  testbed: IWayTestbed | None = None) -> SatelliteResult:
    """Run the full instrument → SP2 → display pipeline."""
    if ny % sp2_nodes:
        raise ValueError("image rows must divide across the SP2 ranks")
    bed = testbed or make_iway(sp2_nodes=sp2_nodes)
    nexus = bed.nexus

    sp2_ctxs = [nexus.context(h, f"sp2-{i}")
                for i, h in enumerate(bed.sp2_hosts)]
    instrument_ctx = nexus.context(bed.instrument_host, "instrument",
                                   methods=("local", "tcp", "udp"))
    cave_ctx = nexus.context(bed.cave_host, "display",
                             methods=("local", "aal5", "tcp"))

    world = MPIWorld(nexus, sp2_ctxs)
    display = Display(nexus)
    display_gp_local = expose(cave_ctx, display)

    # -- instrument: capture + stream -----------------------------------------

    ingest_queue: collections.deque = collections.deque()

    def on_frame(ctx: Context, _ep, buffer: Buffer) -> None:
        frame_id = buffer.get_int()
        captured_at = buffer.get_float()
        image = buffer.get_array()
        buffer.get_padding()
        ingest_queue.append((frame_id, captured_at, image))

    sp2_ctxs[0].register_handler("raw-frame", on_frame)
    feed = instrument_ctx.startpoint_to(sp2_ctxs[0].new_endpoint())

    def instrument_body():
        for frame_id in range(frames):
            image = make_frame(frame_id, ny, nx)
            wire_pad = ny * nx * BYTES_PER_PIXEL  # raw sensor payload
            frame = (Buffer().put_int(frame_id).put_float(nexus.now)
                     .put_array(image).put_padding(wire_pad))
            yield from feed.rsr("raw-frame", frame)
            yield from instrument_ctx.charge(frame_interval)

    # -- SP2: data-parallel filtering -----------------------------------------

    results: dict[int, tuple[float, float]] = {}   # id -> (latency, csum)
    methods: list[str | None] = []

    def sp2_body(proc: MpiProcess):
        rank = proc.rank
        rows = ny // world.size
        display_gp: GlobalPointer | None = None
        if rank == 0:
            display_gp = GlobalPointer.from_wire(display_gp_local.to_wire(),
                                                 proc.context)
        for _ in range(frames):
            if rank == 0:
                yield from proc.context.wait(lambda: bool(ingest_queue))
                frame_id, captured_at, image = ingest_queue.popleft()
                # Halo rows ride along so edge stencils are exact.
                blocks = []
                for index in range(world.size):
                    lo = max(index * rows - 1, 0)
                    hi = min((index + 1) * rows + 1, ny)
                    blocks.append((frame_id, lo, image[lo:hi].copy()))
                meta = yield from proc.scatter(blocks, root=0)
            else:
                meta = yield from proc.scatter(None, root=0)
            frame_id, lo, block = _t.cast(tuple, meta)
            filtered = convolve_rows(np.asarray(block))
            start = rank * rows - lo
            own = filtered[start:start + rows]
            gathered = yield from proc.gather(own, root=0)
            if rank == 0:
                processed = np.vstack(_t.cast(list, gathered))
                checksum = float(processed.sum())
                thumbnail = Padded(None, (ny * nx) // 4)
                assert display_gp is not None
                shown = yield from display_gp.call(
                    "show", frame_id, checksum, thumbnail)
                assert shown == frame_id
                results[frame_id] = (nexus.now - captured_at, checksum)
                methods.append(display_gp.method)

    def display_pump():
        yield from cave_ctx.wait(lambda: len(display.shown) >= frames)

    handles = world.run_spmd(sp2_body)
    handles.append(nexus.spawn(display_pump(), name="display-pump"))
    nexus.spawn(instrument_body(), name="instrument")
    nexus.run_until(*handles)

    ordered = [results[f] for f in range(frames)]
    return SatelliteResult(
        frames=frames,
        latencies=[lat for lat, _c in ordered],
        checksums=[c for _lat, c in ordered],
        display_methods=methods,
        total_time=nexus.now,
    )
