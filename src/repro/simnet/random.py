"""Deterministic named random streams.

Every stochastic element of the simulation (UDP loss, jitter models,
workload generators) draws from a *named* substream derived from a single
root seed, so adding a new consumer never perturbs the draws seen by
existing ones.  This is the standard reproducibility discipline for
simulation studies.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive(seed: int, *names: str) -> np.random.SeedSequence:
    """Derive a child seed from a root ``seed`` and a path of ``names``.

    Returns a :class:`numpy.random.SeedSequence` whose spawn key is the
    crc32 of each path component, so the mapping is stable across
    processes and Python versions and never collides with a differently
    named consumer.  This is the one sanctioned way to mint a per-rule /
    per-client / per-stream seed: ``derive(seed, "flaky", "a<->b")``
    instead of hand-rolled ``seed + index`` arithmetic.

    ``derive(seed, name)`` with a single name is byte-compatible with
    the substream mapping :class:`RandomStreams` has always used.
    """
    return np.random.SeedSequence(
        entropy=int(seed),
        spawn_key=tuple(zlib.crc32(name.encode("utf-8")) for name in names),
    )


def derived_generator(seed: int, *names: str) -> np.random.Generator:
    """A fresh PCG64 generator seeded with :func:`derive`."""
    return np.random.Generator(np.random.PCG64(derive(seed, *names)))


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The substream seed is :func:`derive`'d from ``(root seed, name)``.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = derived_generator(self.seed, name)
            self._streams[name] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
