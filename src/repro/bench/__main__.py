"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # everything
    python -m repro.bench figure4         # one artefact
    python -m repro.bench table1 --quick  # reduced workload sizes
    python -m repro.bench --quick --record BENCH_quick.json
    python -m repro.bench --quick --record out.json \\
        --baseline benchmarks/BENCH_quick_baseline.json --check
    python -m repro.bench --quick --trace trace.json --profile --flame out.folded
    python -m repro.bench --quick --jobs 4 --record BENCH_quick.json
    python -m repro.bench --wall --quick --record BENCH_wall.json \\
        --baseline benchmarks/BENCH_wall_baseline.json --check
    python -m repro.bench --list

The pytest benchmarks (`pytest benchmarks/ --benchmark-only`) are the
canonical gate (they also assert the shape criteria); this entry point
is for interactive exploration, for regenerating EXPERIMENTS.md numbers
without pytest, and for the machine-readable telemetry loop: ``--record``
writes a deterministic :class:`~repro.bench.record.BenchRecord`
(``BENCH_<label>.json``), ``--baseline/--check`` diff it against a
stored baseline and exit non-zero on regression, and
``--profile``/``--flame`` aggregate the traced span log into a hot-path
table and a collapsed-stack flamegraph export.

``--wall`` switches to the wall-clock tier (see :mod:`repro.bench.wall`):
each artefact runs ``--runs`` times untraced, and the record holds
median/p10/p90 wall seconds plus events-per-second instead of the
simulated-time tables.  With ``--baseline --check``, wall metrics gate
at the generous ``--wall-tolerance`` band while the deterministic
``sim_events`` counts keep their exact gate.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing as _t

from .. import obs as _obs
from ..util.report import hot_path_report
from .ablations import (
    ablation_adaptive_skip,
    ablation_blocking_poll,
    ablation_lightweight_startpoints,
    ablation_mpi_layering,
    ablation_rendezvous,
)
from .figure4 import check_figure4_shape, figure4
from .figure6 import check_figure6_shape, figure6
from .record import (
    KIND_WALL,
    WALL_TOLERANCE,
    BenchRecord,
    compare_records,
    load_record,
    record_ablations,
    record_baselines,
    record_chaos,
    record_figure4,
    record_figure6,
    record_load,
    record_observability,
    record_table1,
)
from .table1 import check_table1_shape, table1
from .wall import DEFAULT_WALL_RUNS, measure_artefact, record_wall


def _run_figure4(quick: bool, record: BenchRecord | None) -> None:
    fig = figure4(roundtrips=30 if quick else 100)
    print(fig.render())
    print()
    print(fig.render_charts())
    if record is not None:
        record_figure4(record, fig)
    if not quick:  # quick runs quantise too coarsely to assert shapes
        check_figure4_shape(fig)
        print("shape: OK")


def _run_figure6(quick: bool, record: BenchRecord | None) -> None:
    fig = figure6(mpl_roundtrips=150 if quick else 400)
    print(fig.render())
    print()
    print(fig.render_charts())
    if record is not None:
        record_figure6(record, fig)
    if not quick:
        check_figure6_shape(fig)
        print("shape: OK")


def _run_table1(quick: bool, record: BenchRecord | None) -> None:
    config = None
    if quick:
        import dataclasses

        from ..apps.climate import ClimateConfig
        config = dataclasses.replace(ClimateConfig(), steps=2)
    result = table1(config=config)
    print(result.render())
    if record is not None:
        record_table1(record, result)
    if not quick:
        check_table1_shape(result)
        print("shape: OK")


def _run_ablations(quick: bool, record: BenchRecord | None) -> None:
    blocking = ablation_blocking_poll(
        mpl_roundtrips=150 if quick else 400)
    print(blocking.table.render(1))
    layering = ablation_mpi_layering()
    print(f"\nMPI-on-Nexus layering overhead: {layering.overhead:.1%}")
    adaptive = ablation_adaptive_skip(mpl_roundtrips=200 if quick else 600)
    print(f"adaptive skip_poll: MPL {adaptive.adaptive_mpl * 1e6:.1f} us "
          f"(best static {adaptive.best_static_mpl() * 1e6:.1f} us); "
          f"final skips {adaptive.final_skips}")
    sizes = ablation_lightweight_startpoints()
    print(f"startpoint wire size: {sizes.full_bytes} B full, "
          f"{sizes.lightweight_bytes} B lightweight "
          f"({sizes.saving:.0%} saving)")
    rendezvous = ablation_rendezvous(messages=4 if quick else 6)
    print(f"eager vs rendezvous: parked bytes "
          f"{rendezvous.eager_parked_bytes} -> "
          f"{rendezvous.rendezvous_parked_bytes} "
          f"({rendezvous.parked_reduction:.0%} reduction) at "
          f"{(rendezvous.rendezvous_time / rendezvous.eager_time - 1):.0%} "
          "extra completion time")
    if record is not None:
        record_ablations(record, blocking=blocking, layering=layering,
                         adaptive=adaptive, startpoints=sizes,
                         rendezvous=rendezvous)


def _run_baselines(quick: bool, record: BenchRecord | None) -> None:
    from ..baselines import run_mixed_workload
    from ..util.records import ResultTable

    rounds = 10 if quick else 30
    results = {
        "p4 (hard-coded)": run_mixed_workload("p4", rounds=rounds),
        "pvm (daemon relay)": run_mixed_workload("pvm", rounds=rounds),
    }
    for skip in (1, 20):
        results[f"nexus skip_poll={skip}"] = run_mixed_workload(
            "nexus", rounds=rounds, skip_poll=skip)
    table = ResultTable("Prior art vs multimethod Nexus", ["ms/round"])
    for label, result in results.items():
        table.add(label, result.time_per_round * 1e3)
    print(table.render())
    if record is not None:
        record_baselines(record, results)


def _run_chaos(quick: bool, record: BenchRecord | None) -> None:
    from ..apps.climate import run_chaos_climate
    from ..util.units import format_time

    result = run_chaos_climate(seed=0)
    print(f"TCP outage at t={format_time(result.outage_start)} for "
          f"{format_time(result.outage_duration)} "
          f"(run lasts {format_time(result.climate.total_time)})")
    for when, line in result.timeline():
        print(f"  {format_time(when):>10}  {line}")
    print(f"recovery: {result.retries} retries, "
          f"{result.failovers} failovers, {result.probes} probes")
    if not result.recovered:
        raise AssertionError("chaos run did not recover TCP")
    if record is not None:
        record_chaos(record, result)
    if not quick:
        print("shape: OK")


def _run_load(quick: bool, record: BenchRecord | None) -> None:
    from .load import check_load_shape, load_bench

    bench = load_bench(quick=quick)
    print(bench.render())
    for verdict in bench.verdicts.values():
        print(verdict.summary())
    if record is not None:
        record_load(record, bench)
    if not quick:
        check_load_shape(bench)
        print("shape: OK")


def _run_analysis(quick: bool, record: BenchRecord | None) -> None:
    from .analysis import analysis_bench, check_analysis_shape
    from .record import record_analysis

    bench = analysis_bench(quick=quick)
    print(bench.render())
    print(bench.chaos_verdict.summary())
    for label, result in (("chaos", bench.chaos_result),
                          ("forward", bench.forward_result)):
        if result.stream is not None:
            stream = result.stream
            print(f"stream[{label}]: {stream['spans_emitted']} spans "
                  f"({stream['spans_sampled_out']} sampled out) in "
                  f"{stream['shards']} shard(s), "
                  f"{stream['bytes_written']} bytes, peak "
                  f"{stream['peak_open_spans']} open spans "
                  f"-> {stream['directory']}")
    if record is not None:
        record_analysis(record, bench)
    # The analysis workload is mode-independent (one short, tuned run),
    # so the shape criteria hold in quick CI too.
    check_analysis_shape(bench)
    print("shape: OK")


def _run_place(quick: bool, record: BenchRecord | None) -> None:
    from .place import check_place_shape, place_bench
    from .record import record_place

    bench = place_bench(quick=quick)
    print(bench.render())
    print(bench.search.summary())
    print(f"hill-climb from direct: {bench.hill.label} "
          f"(static {bench.hill.static.static_capacity:.1f}/s); "
          f"static/simulated agreement {bench.agreement:.2f} "
          f"at jobs={bench.jobs}")
    if record is not None:
        record_place(record, bench)
    # The placement workload is mode-independent (one short profile
    # plus a few bisection probes), so the §4.3-rediscovery shape
    # criteria hold in quick CI too.
    check_place_shape(bench)
    print("shape: OK")


def _run_fleet(quick: bool, record: BenchRecord | None) -> None:
    from .fleet import check_fleet_shape, fleet_scaling
    from .record import record_fleet

    scaling = fleet_scaling(quick=quick)
    print(scaling.render())
    if record is not None:
        record_fleet(record, scaling)
    check_fleet_shape(scaling)
    print("shape: OK")


ARTEFACTS: dict[str, _t.Callable[[bool, BenchRecord | None], None]] = {
    "figure4": _run_figure4,
    "figure6": _run_figure6,
    "table1": _run_table1,
    "ablations": _run_ablations,
    "baselines": _run_baselines,
    "chaos": _run_chaos,
    "load": _run_load,
    "analysis": _run_analysis,
    "place": _run_place,
}

#: Opt-in artefacts: runnable by name, excluded from the default "run
#: everything" selection (the fleet tier times multi-process scaling,
#: which would perturb — and be perturbed by — the rest of the suite).
EXTRA_ARTEFACTS: dict[str, _t.Callable[[bool, BenchRecord | None],
                                       None]] = {
    "fleet": _run_fleet,
}

ALL_ARTEFACTS = {**ARTEFACTS, **EXTRA_ARTEFACTS}


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation artefacts.",
    )
    parser.add_argument("artefacts", nargs="*", metavar="ARTEFACT",
                        help=f"one of: {', '.join(ALL_ARTEFACTS)} "
                             "(default: all except "
                             f"{', '.join(EXTRA_ARTEFACTS)})")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run simulation artefacts across N worker "
                             "processes (repro.fleet); merged records "
                             "are byte-identical to --jobs 1")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="trace every RSR lifecycle and write a "
                             "Chrome trace-event JSON (load in Perfetto)")
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="write the run's metrics as a deterministic "
                             "BENCH record (sorted-key JSON)")
    parser.add_argument("--record-wall", action="store_true",
                        help="include advisory wall-clock timings in the "
                             "record (makes it non-deterministic)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="diff this run's record against a stored "
                             "baseline record and print the delta table")
    parser.add_argument("--check", action="store_true",
                        help="with --baseline: exit non-zero if any gated "
                             "metric regressed")
    parser.add_argument("--profile", action="store_true",
                        help="trace the run and print the top-N sim-time "
                             "hot-path table")
    parser.add_argument("--flame", metavar="PATH", default=None,
                        help="trace the run and write collapsed-stack "
                             "output (speedscope / flamegraph.pl)")
    parser.add_argument("--wall", action="store_true",
                        help="wall-clock tier: time each artefact over "
                             "--runs repetitions (stdout suppressed) and "
                             "record median/p10/p90 wall + events/sec")
    parser.add_argument("--runs", type=int, default=DEFAULT_WALL_RUNS,
                        metavar="N",
                        help="repetitions per artefact for --wall "
                             f"(default {DEFAULT_WALL_RUNS})")
    parser.add_argument("--wall-tolerance", type=float,
                        default=WALL_TOLERANCE, metavar="FRAC",
                        help="with --wall --check: relative band before a "
                             "wall metric gates "
                             f"(default {WALL_TOLERANCE})")
    parser.add_argument("--export-dir", metavar="DIR", default=None,
                        help="where the analysis artefact writes its "
                             "timeline/graph/critpath documents "
                             "(timeline.json, graph.json, graph.dot, "
                             "critpath.json) and the place artefact "
                             "writes its winning placement.json")
    parser.add_argument("--stream-dir", metavar="DIR", default=None,
                        help="spool the analysis artefact's spans to "
                             "sharded JSONL under DIR/chaos and "
                             "DIR/forward and rebuild the analysis "
                             "documents by folding the shards")
    parser.add_argument("--sample", metavar="POLICY", default=None,
                        help="with --stream-dir: sampling policy for the "
                             "spool (head:N, tail:N, head:N,tail:M, "
                             "reservoir:K; failure-evidence RSRs are "
                             "always kept)")
    parser.add_argument("--sample-seed", type=int, default=0,
                        metavar="SEED",
                        help="seed for reservoir sampling (default 0)")
    parser.add_argument("--mem-ceiling-mb", type=float, default=None,
                        metavar="MB",
                        help="run the artefacts under tracemalloc and "
                             "exit non-zero if peak traced allocation "
                             "exceeds MB mebibytes")
    parser.add_argument("--append-history", metavar="PATH", default=None,
                        help="with --wall: append this run's record to a "
                             "JSONL history ledger; with --baseline "
                             "--check, gate wall metrics against "
                             "variance-aware bands (median ± k·IQR) "
                             "computed from the existing history")
    parser.add_argument("--list", action="store_true",
                        help="list artefacts and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_ARTEFACTS:
            print(name)
        return 0
    if args.check and not args.baseline:
        parser.error("--check requires --baseline")
    if args.wall and (args.trace or args.profile or args.flame):
        parser.error("--wall times untraced runs; it cannot be combined "
                     "with --trace/--profile/--flame")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.jobs > 1:
        # Everything that depends on in-process global state cannot fan
        # out: wall timings would perturb each other, trace collection
        # and tracemalloc are per-process, and the analysis export
        # globals do not propagate to spawn workers.
        if args.wall:
            parser.error("--wall stays serial so timings are not "
                         "perturbed; it cannot combine with --jobs")
        if args.trace or args.profile or args.flame:
            parser.error("--jobs cannot combine with "
                         "--trace/--profile/--flame (trace collection "
                         "is in-process)")
        if args.export_dir or args.stream_dir:
            parser.error("--jobs cannot combine with "
                         "--export-dir/--stream-dir (analysis export "
                         "state is per-process)")
        if args.mem_ceiling_mb is not None:
            parser.error("--jobs cannot combine with --mem-ceiling-mb "
                         "(tracemalloc is per-process)")

    if args.sample is not None and args.stream_dir is None:
        parser.error("--sample requires --stream-dir")
    if args.append_history is not None and not args.wall:
        parser.error("--append-history records wall-tier runs; "
                     "it requires --wall")

    if args.export_dir is not None:
        from . import place as _place

        _place.EXPORT_DIR = args.export_dir
    if args.export_dir is not None or args.stream_dir is not None:
        from . import analysis as _analysis

        _analysis.EXPORT_DIR = args.export_dir
        _analysis.STREAM_DIR = args.stream_dir
        _analysis.SAMPLE = args.sample
        _analysis.SAMPLE_SEED = args.sample_seed
        if args.sample is not None:
            from ..obs.stream import parse_policy

            try:  # fail fast on a malformed spec, before benchmarking
                parse_policy(args.sample, args.sample_seed)
            except ValueError as exc:
                parser.error(str(exc))

    selected = args.artefacts or list(ARTEFACTS)
    for name in selected:
        if name not in ALL_ARTEFACTS:
            parser.error(f"unknown artefact {name!r}; "
                         f"choose from {', '.join(ALL_ARTEFACTS)}")
    if args.jobs > 1 and "fleet" in selected:
        # Fleet workers are daemonic processes and cannot spawn the
        # nested pools the scaling artefact itself needs.
        parser.error("the fleet artefact measures its own worker "
                     "scaling; run it at --jobs 1")

    baseline = None
    if args.baseline:
        # Load up front: a missing or corrupt baseline should fail
        # before minutes of benchmarking, not after.
        try:
            baseline = load_record(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    record: BenchRecord | None = None
    if args.record or args.baseline or args.append_history:
        label = "quick" if args.quick else "full"
        if args.wall:
            label = f"wall-{label}"
        record = BenchRecord(label, quick=args.quick)
    tracing = bool(args.trace or args.profile or args.flame)
    collected: list = []
    mem_peak_mb: float | None = None
    if args.mem_ceiling_mb is not None:
        import tracemalloc

        tracemalloc.start()
    if args.wall:
        for name in selected:
            print(f"=== {name} {'(quick)' if args.quick else ''} ===")
            measurement = measure_artefact(
                name, ALL_ARTEFACTS[name], quick=args.quick,
                runs=args.runs)
            print(measurement.summary())
            if record is not None:
                record_wall(record, measurement)
    elif args.jobs > 1:
        from ..fleet.merge import FleetTaskError, merge_bench_outcomes
        from ..fleet.plan import BenchFanout, run_plan

        plan = BenchFanout(artefacts=tuple(selected), quick=args.quick)
        run = run_plan(plan, jobs=args.jobs)
        sink = record if record is not None else BenchRecord(
            "fleet-merge", quick=args.quick)
        try:
            merged = merge_bench_outcomes(sink, run.outcomes)
        except FleetTaskError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(exc.remote_traceback, file=sys.stderr)
            return 1
        # Replay worker stdout in selection order (== task-key order),
        # so the transcript reads like the serial run regardless of
        # completion order; per-artefact wall is the worker's own.
        for result in merged:
            print(f"=== {result.name} {'(quick)' if args.quick else ''} "
                  "===")
            sys.stdout.write(result.stdout)
            if record is not None:
                record.add(result.name, "wall_s", result.wall_s,
                           unit="s", kind=KIND_WALL)
            print(f"[{result.name}: {result.wall_s:.1f}s wall]\n")
        print(f"[fleet: {len(merged)} artefact(s) at jobs={args.jobs}: "
              f"{run.wall_s:.1f}s wall]\n")
    else:
        for name in selected:
            print(f"=== {name} {'(quick)' if args.quick else ''} ===")
            started = time.perf_counter()
            if tracing:
                with _obs.collecting() as runs:
                    ALL_ARTEFACTS[name](args.quick, record)
                collected.extend(runs)
                if record is not None:
                    record_observability(record, name, runs)
            else:
                ALL_ARTEFACTS[name](args.quick, record)
            elapsed = time.perf_counter() - started
            if record is not None:
                record.add(name, "wall_s", elapsed, unit="s",
                           kind=KIND_WALL)
            print(f"[{name}: {elapsed:.1f}s wall]\n")
    if args.mem_ceiling_mb is not None:
        import tracemalloc

        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        mem_peak_mb = peak / (1 << 20)
        print(f"memory: peak traced {mem_peak_mb:.1f} MiB "
              f"(ceiling {args.mem_ceiling_mb:.1f} MiB)")

    if args.trace:
        _obs.export.write_merged_chrome_trace(args.trace, collected)
        spans = sum(len(obs.spans) for obs, _nexus in collected)
        rsrs = sum(obs.rsrs_started for obs, _nexus in collected)
        print(f"trace: {spans} spans over {rsrs} RSRs from "
              f"{len(collected)} runtimes -> {args.trace}")
    if args.profile or args.flame:
        profile = _obs.perf.PerfProfile.from_runs(collected)
        if args.profile:
            print(hot_path_report(profile))
        if args.flame:
            profile.write_collapsed(args.flame)
            print(f"flame: {len(profile.collapsed_stacks())} stacks "
                  f"({profile.spans_profiled} spans) -> {args.flame}")
    if args.record:
        assert record is not None
        # The wall tier's record IS its wall numbers; always keep them.
        record.write(args.record,
                     include_wall=args.record_wall or args.wall)
        print(f"record: {len(record)} metrics -> {args.record}")
    history_bands = None
    if args.append_history:
        from .history import append_history, load_history, wall_bands

        history = load_history(args.append_history)
        history_bands = wall_bands(history) or None
    if args.baseline:
        assert record is not None and baseline is not None
        comparison = compare_records(
            baseline, record.to_document(include_wall=True),
            wall_tolerance=args.wall_tolerance if args.wall else None,
            wall_bands=history_bands)
        if history_bands:
            print(f"wall gate: variance bands from {len(history)} "
                  f"historical runs ({len(history_bands)} banded metrics)")
        print(comparison.render())
        if args.check and not comparison.ok:
            return 1
    if args.append_history:
        assert record is not None
        append_history(args.append_history,
                       record.to_document(include_wall=True))
        print(f"history: run {len(history) + 1} -> {args.append_history}")
    if (mem_peak_mb is not None
            and mem_peak_mb > _t.cast(float, args.mem_ceiling_mb)):
        print(f"error: peak traced memory {mem_peak_mb:.1f} MiB exceeds "
              f"ceiling {args.mem_ceiling_mb:.1f} MiB", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
