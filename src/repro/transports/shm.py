"""Shared-memory communication module.

Applicable between two contexts on the *same host* (the paper lists
shared memory among the implemented modules and uses it as the canonical
example of an automatically selected intra-node method).
"""

from __future__ import annotations

from .base import ContextLike, Descriptor
from .fastbase import FastTransport

if False:  # pragma: no cover - typing only
    from ..simnet.node import Host


class ShmTransport(FastTransport):
    """Same-host delivery through a shared-memory segment."""

    name = "shm"
    speed_rank = 1

    def export_descriptor(self, context: ContextLike) -> Descriptor:
        return Descriptor(
            method=self.name,
            context_id=context.id,
            params=(("host", context.host.id),),
        )

    def applicable(self, local: ContextLike, descriptor: Descriptor,
                   remote_host: "Host") -> bool:
        if descriptor.context_id == local.id:
            return False  # local module handles that case, and is cheaper
        return descriptor.param("host") == local.host.id
