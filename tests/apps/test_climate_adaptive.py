"""Tests for the adaptive-skip_poll climate mode (§6 future work)."""

import dataclasses

import pytest

from repro.apps.climate import TEST_CONFIG, ClimateMode, run_coupled_model


@pytest.fixture(scope="module")
def runs():
    cfg = dataclasses.replace(TEST_CONFIG, steps=4)
    return {
        "adaptive": run_coupled_model(cfg, ClimateMode.ADAPTIVE),
        "untuned": run_coupled_model(cfg, ClimateMode.SKIP_POLL,
                                     skip_poll=1),
        "tuned": run_coupled_model(cfg, ClimateMode.SKIP_POLL,
                                   skip_poll=500),
    }


def test_adaptive_beats_untuned(runs):
    assert (runs["adaptive"].seconds_per_step
            < runs["untuned"].seconds_per_step)


def test_adaptive_near_tuned(runs):
    assert (runs["adaptive"].seconds_per_step
            <= runs["tuned"].seconds_per_step * 1.10)


def test_adaptive_cuts_select_time(runs):
    assert runs["adaptive"].tcp_poll_time < 0.5 * runs["untuned"].tcp_poll_time


def test_adaptive_physics_identical(runs):
    assert runs["adaptive"].atmo_checksum == pytest.approx(
        runs["untuned"].atmo_checksum)
    assert runs["adaptive"].label == "adaptive skip poll"
