"""Units and human-readable formatting.

Internally everything is SI base units: seconds and bytes (bandwidth in
bytes/second).  These helpers exist so cost-model constants in
:mod:`repro.transports.costmodels` read like the numbers in the paper
("36 MB/sec", "15 microseconds", "2 milliseconds").
"""

from __future__ import annotations

#: Bytes multipliers (paper-era convention: 1 MB = 2**20 bytes).
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def microseconds(x: float) -> float:
    """``x`` microseconds expressed in seconds."""
    return x * 1e-6


def milliseconds(x: float) -> float:
    """``x`` milliseconds expressed in seconds."""
    return x * 1e-3


def mbps(x: float) -> float:
    """``x`` megabytes/second expressed in bytes/second."""
    return x * MB


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate unit."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bytes(nbytes: float) -> str:
    """Render a byte count with an appropriate unit."""
    if abs(nbytes) >= GB:
        return f"{nbytes / GB:.2f} GB"
    if abs(nbytes) >= MB:
        return f"{nbytes / MB:.2f} MB"
    if abs(nbytes) >= KB:
        return f"{nbytes / KB:.2f} KB"
    return f"{int(nbytes)} B"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth with an appropriate unit."""
    return f"{format_bytes(bytes_per_second)}/s"
